"""Plain-text table rendering for benchmark and experiment reports.

The evaluation harness prints the same rows/series the paper's tables and
figures report; this module owns the formatting so every report looks alike.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def _cell(value: object, float_digits: int) -> str:
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_digits: int = 3,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    str_rows = [[_cell(value, float_digits) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def format_series(name: str, labels: Sequence[str], values: Sequence[float]) -> str:
    """Render one figure series (label: value pairs) as indented lines."""
    body = "\n".join(
        f"  {label}: {value:.3f}" for label, value in zip(labels, values)
    )
    return f"{name}\n{body}"
