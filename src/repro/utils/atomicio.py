"""Crash- and rsync-safe file writes.

Every durable artifact of a sweep — result-store entries, sweep
manifests, ``repro sweep --output`` files — goes through
:func:`atomic_write_text`: the payload is written to a ``.tmp-*`` file
in the destination directory, fsync'd, and ``os.replace``d into place.
A reader (or an ``rsync`` of the directory) therefore only ever observes
either the previous complete file or the new complete file, never a
partially written one — the property the distributed shard-and-merge
workflow (:mod:`repro.eval.distributed`) and the long-running result
service (:mod:`repro.eval.serve`) rely on when cache directories are
copied between hosts or read mid-run.

Two distinct failure modes are covered:

* **Killed writer** (process dies): ``os.replace`` is atomic, so the
  destination keeps its previous complete content and the temp file is
  skippable debris.
* **Power loss** (whole host dies): rename atomicity is a *metadata*
  property — without an ``fsync`` of the temp file the journal can
  commit the rename before the data blocks hit disk, leaving a
  zero-length or garbage entry under the *new* name after recovery.
  The temp file is therefore fsync'd before the rename, and the
  directory is fsync'd (best-effort: some platforms/filesystems refuse
  to open directories) afterwards so the rename itself is durable.

Temp files are dot-prefixed so directory scans that enumerate entries
(:meth:`repro.eval.cache.ResultStore._entries`) can skip debris a killed
writer left behind; :func:`is_temp_file` names the convention once.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

#: Prefix of in-flight temp files (dot-prefixed: entry scans skip them).
TEMP_PREFIX = ".tmp-"


def is_temp_file(path: "Path | str") -> bool:
    """Whether ``path`` is an in-flight/abandoned atomic-write temp file."""
    return Path(path).name.startswith(TEMP_PREFIX)


def fsync_dir(directory: "Path | str") -> None:
    """Best-effort fsync of a directory (makes a rename in it durable).

    Directory fds are a POSIX affordance: some platforms (Windows) and
    filesystems refuse to open or fsync them, and a store that cannot
    persist the rename record is still correct after a crash — the
    entry is merely recomputed.  So every failure here is swallowed.
    """
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        fd = os.open(directory, flags)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: "Path | str", text: str, *,
                      encoding: str = "utf-8", durable: bool = True) -> None:
    """Write ``text`` to ``path`` so readers never see a partial file.

    The temp file lives in ``path``'s directory (``os.replace`` must not
    cross filesystems).  On any failure — including the writer dying
    mid-write — the destination keeps its previous content; the temp
    file is removed when this code still runs, and is skippable debris
    (see :func:`is_temp_file`) when it does not.  ``OSError`` propagates:
    callers decide whether a failed write is fatal (a manifest) or
    best-effort (a cache entry).

    With ``durable`` (the default) the temp file is fsync'd before the
    rename and the directory after it, extending the contract from
    "killed writer" to "power loss": without the data fsync a crash
    shortly after :func:`os.replace` can surface a zero-length file
    under the destination name once the journal replays.  Pass
    ``durable=False`` only for scratch artifacts whose loss is free.
    """
    path = Path(path)
    handle, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=TEMP_PREFIX, suffix=path.suffix or ".part")
    try:
        with os.fdopen(handle, "w", encoding=encoding) as tmp:
            tmp.write(text)
            # mkstemp creates 0600; give the replaced file the ordinary
            # umask-governed mode instead — shard stores, manifests, and
            # sweep outputs are exactly the files other users/uids read
            # off a shared or rsync'd directory.
            umask = os.umask(0)
            os.umask(umask)
            os.fchmod(tmp.fileno(), 0o666 & ~umask)
            if durable:
                tmp.flush()
                os.fsync(tmp.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass        # already replaced, or the directory vanished
        raise
    if durable:
        fsync_dir(path.parent)
