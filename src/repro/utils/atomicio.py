"""Crash- and rsync-safe file writes.

Every durable artifact of a sweep — result-store entries, sweep
manifests, ``repro sweep --output`` files — goes through
:func:`atomic_write_text`: the payload is written to a ``.tmp-*`` file
in the destination directory and ``os.replace``d into place.  A reader
(or an ``rsync`` of the directory) therefore only ever observes either
the previous complete file or the new complete file, never a partially
written one — the property the distributed shard-and-merge workflow
(:mod:`repro.eval.distributed`) relies on when cache directories are
copied between hosts mid-run.

Temp files are dot-prefixed so directory scans that enumerate entries
(:meth:`repro.eval.cache.ResultStore._entries`) can skip debris a killed
writer left behind; :func:`is_temp_file` names the convention once.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

#: Prefix of in-flight temp files (dot-prefixed: entry scans skip them).
TEMP_PREFIX = ".tmp-"


def is_temp_file(path: "Path | str") -> bool:
    """Whether ``path`` is an in-flight/abandoned atomic-write temp file."""
    return Path(path).name.startswith(TEMP_PREFIX)


def atomic_write_text(path: "Path | str", text: str, *,
                      encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` so readers never see a partial file.

    The temp file lives in ``path``'s directory (``os.replace`` must not
    cross filesystems).  On any failure — including the writer dying
    mid-write — the destination keeps its previous content; the temp
    file is removed when this code still runs, and is skippable debris
    (see :func:`is_temp_file`) when it does not.  ``OSError`` propagates:
    callers decide whether a failed write is fatal (a manifest) or
    best-effort (a cache entry).
    """
    path = Path(path)
    handle, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=TEMP_PREFIX, suffix=path.suffix or ".part")
    try:
        with os.fdopen(handle, "w", encoding=encoding) as tmp:
            tmp.write(text)
            # mkstemp creates 0600; give the replaced file the ordinary
            # umask-governed mode instead — shard stores, manifests, and
            # sweep outputs are exactly the files other users/uids read
            # off a shared or rsync'd directory.
            umask = os.umask(0)
            os.umask(umask)
            os.fchmod(tmp.fileno(), 0o666 & ~umask)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass        # already replaced, or the directory vanished
        raise
