"""Deterministic random-number helpers.

All stochastic algorithms in this package (motif regeneration, simulated
annealing, PathFinder tie-breaking) accept either a seed or an existing
``random.Random``.  Routing everything through :func:`make_rng` keeps every
experiment reproducible run-to-run.
"""

from __future__ import annotations

import random

DEFAULT_SEED = 0xC64A


def make_rng(seed_or_rng: int | random.Random | None = None) -> random.Random:
    """Return a ``random.Random`` from a seed, an existing RNG, or a default.

    Passing an existing RNG returns it unchanged so callers can thread one
    generator through nested algorithms.
    """
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    if seed_or_rng is None:
        return random.Random(DEFAULT_SEED)
    return random.Random(seed_or_rng)
