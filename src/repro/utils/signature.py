"""Canonical structural signatures for configuration objects.

Shared by the persistent result store (fingerprint keys) and the mapping
engine's MRRG pool (pool keys): both need a deterministic, process-stable
summary of an :class:`~repro.arch.base.Architecture` instance so that two
structurally identical fabrics — whether or not they are the same Python
object — hash to the same key.

``encode_value`` canonicalizes arbitrary config values (dataclasses,
enums, sets, nested containers) into JSON-serializable structures with a
deterministic ordering; ``arch_signature`` applies it to every dataclass
field of an architecture.  The encodings here are part of the persistent
cache's fingerprint format: changing them orphans existing cache entries
(they degrade to misses, never to wrong numbers).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:   # pragma: no cover - avoids an import cycle at runtime
    from repro.arch.base import Architecture


def canonical_json(payload) -> str:
    """The one canonical JSON text used for digesting configurations.

    Sorted keys, no whitespace: two structurally equal payloads always
    serialize to the same bytes, on any host.  The result-store
    fingerprints, the MRRG pool keys, and the distributed sweep's shard
    assignment all hash this text — which is why a shard computed on one
    machine matches the shard the merge step expects on another.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def encode_value(value) -> object:
    """Deterministic, JSON-serializable encoding of a config value."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, (list, tuple)):
        return [encode_value(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted((encode_value(item) for item in value), key=repr)
    if isinstance(value, dict):
        return sorted(([repr(key), encode_value(item)]
                       for key, item in value.items()), key=repr)
    if dataclasses.is_dataclass(value):
        return [type(value).__name__] + [
            encode_value(getattr(value, f.name))
            for f in dataclasses.fields(value)
        ]
    return repr(value)


def arch_signature(arch: "Architecture") -> dict:
    """A JSON-stable structural summary of an architecture instance.

    Walks *every* dataclass field — the resource graph (FUs, places,
    moves, produce/consume wiring), bypass pairs, resource capacities,
    SPM geometry, configuration depth, and the free-form ``params``
    dict — so any edit the mapper or power model can observe changes
    the signature.  New :class:`Architecture` fields are covered
    automatically.
    """
    return {f.name: encode_value(getattr(arch, f.name))
            for f in dataclasses.fields(arch)}


def arch_structural_key(arch: "Architecture") -> str:
    """Compact digest of :func:`arch_signature`, memoized per instance.

    Two architecture objects with equal structural keys are
    interchangeable for mapping: every id, capacity, wire, and parameter
    the mappers and the MRRG read is identical.  The MRRG pool keys its
    reusable graphs by this digest (plus the II).
    """
    cached = getattr(arch, "_structural_key", None)
    if cached is None:
        canonical = canonical_json(arch_signature(arch))
        cached = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        arch._structural_key = cached
    return cached
