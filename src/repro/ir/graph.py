"""The dataflow graph (DFG) container.

A DFG models one (possibly unrolled) innermost-loop body.  Edges carry:

* ``operand_index`` — which input port of the consumer the value feeds;
* ``distance`` — inter-iteration dependence distance (0 = same iteration).

Edges with ``distance == 0`` must form a DAG; loop-carried dependencies
(reductions, stencils reading the previous iteration) use ``distance >= 1``
and may close cycles, which is what produces a recurrence-constrained
minimum II during modulo scheduling.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.errors import DFGError
from repro.ir.node import AffineAccess, DFGNode
from repro.ir.ops import OP_ARITY, Opcode


#: Sentinel operand index for ordering-only (memory dependence) edges.
ORDERING = -1


@dataclass(frozen=True)
class DFGEdge:
    """A dependence from ``src`` to ``dst`` (node ids).

    ``operand_index == ORDERING`` marks a memory-dependence edge: it
    constrains scheduling (the consumer must execute after the producer,
    offset by ``distance`` iterations) but carries no value and needs no
    routing.  All other edges are data edges feeding a consumer operand slot.
    """

    src: int
    dst: int
    operand_index: int = 0
    distance: int = 0

    def __post_init__(self) -> None:
        if self.distance < 0:
            raise DFGError(f"edge {self.src}->{self.dst} has negative distance")
        if self.operand_index < ORDERING:
            raise DFGError(f"edge {self.src}->{self.dst} has negative operand index")

    @property
    def is_ordering(self) -> bool:
        """True for ordering-only (memory dependence) edges."""
        return self.operand_index == ORDERING


class DFG:
    """A directed dataflow graph with inter-iteration edges.

    Nodes are stored by dense integer id; edges are indexed both ways for
    O(1) fan-in/fan-out queries, which the motif matcher leans on heavily.
    """

    def __init__(self, name: str = "dfg", loop_dims: int = 1,
                 trip_counts: tuple[int, ...] | None = None) -> None:
        self.name = name
        #: Number of loop dimensions of the iteration space.
        self.loop_dims = loop_dims
        #: Trip count per loop dimension (outermost first).
        self.trip_counts: tuple[int, ...] = trip_counts or (1,) * loop_dims
        if len(self.trip_counts) != loop_dims:
            raise DFGError("trip_counts length must equal loop_dims")
        self._nodes: dict[int, DFGNode] = {}
        self._edges: list[DFGEdge] = []
        self._out_edges: dict[int, list[DFGEdge]] = {}
        self._in_edges: dict[int, list[DFGEdge]] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, op: Opcode, name: str = "", const: int | None = None,
                 access: AffineAccess | None = None) -> DFGNode:
        """Create a node and return it."""
        node = DFGNode(self._next_id, op, name=name, const=const, access=access)
        self._nodes[node.node_id] = node
        self._out_edges[node.node_id] = []
        self._in_edges[node.node_id] = []
        self._next_id += 1
        return node

    def add_edge(self, src: DFGNode | int, dst: DFGNode | int,
                 operand_index: int = 0, distance: int = 0) -> DFGEdge:
        """Connect two existing nodes; validates ids and operand slots."""
        src_id = src.node_id if isinstance(src, DFGNode) else src
        dst_id = dst.node_id if isinstance(dst, DFGNode) else dst
        if src_id not in self._nodes:
            raise DFGError(f"unknown source node id {src_id}")
        if dst_id not in self._nodes:
            raise DFGError(f"unknown destination node id {dst_id}")
        dst_node = self._nodes[dst_id]
        if operand_index != ORDERING and operand_index >= OP_ARITY[dst_node.op]:
            raise DFGError(
                f"{dst_node.op.name} node '{dst_node.name}' has no operand "
                f"slot {operand_index}"
            )
        edge = DFGEdge(src_id, dst_id, operand_index, distance)
        self._edges.append(edge)
        self._out_edges[src_id].append(edge)
        self._in_edges[dst_id].append(edge)
        return edge

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> DFGNode:
        """Node by id; raises :class:`DFGError` when absent."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise DFGError(f"no node with id {node_id} in '{self.name}'") from None

    @property
    def nodes(self) -> list[DFGNode]:
        """All nodes in id order."""
        return [self._nodes[node_id] for node_id in sorted(self._nodes)]

    @property
    def edges(self) -> list[DFGEdge]:
        """All edges in insertion order."""
        return list(self._edges)

    @property
    def data_edges(self) -> list[DFGEdge]:
        """Edges that carry a value (ordering edges excluded)."""
        return [edge for edge in self._edges if not edge.is_ordering]

    def out_edges(self, node_id: int) -> list[DFGEdge]:
        """Edges whose source is ``node_id``."""
        return list(self._out_edges[node_id])

    def in_edges(self, node_id: int) -> list[DFGEdge]:
        """Edges whose destination is ``node_id``."""
        return list(self._in_edges[node_id])

    def predecessors(self, node_id: int) -> list[int]:
        """Distinct source ids feeding ``node_id`` (any distance)."""
        return sorted({edge.src for edge in self._in_edges[node_id]})

    def successors(self, node_id: int) -> list[int]:
        """Distinct destination ids fed by ``node_id`` (any distance)."""
        return sorted({edge.dst for edge in self._out_edges[node_id]})

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def compute_nodes(self) -> list[DFGNode]:
        """Nodes executable on a plain ALU."""
        return [node for node in self.nodes if node.is_compute]

    @property
    def memory_nodes(self) -> list[DFGNode]:
        """LOAD/STORE nodes (need an ALSU / memory-capable PE)."""
        return [node for node in self.nodes if node.is_memory]

    @property
    def iterations(self) -> int:
        """Total iteration-space points (product of trip counts)."""
        total = 1
        for trip in self.trip_counts:
            total *= trip
        return total

    def iteration_indices(self, iteration: int) -> tuple[int, ...]:
        """Map a flat iteration number to loop indices, outermost first."""
        indices = []
        remaining = iteration
        for trip in reversed(self.trip_counts):
            indices.append(remaining % trip)
            remaining //= trip
        return tuple(reversed(indices))

    def __iter__(self) -> Iterator[DFGNode]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return self.num_nodes

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raises :class:`DFGError` on failure.

        Invariants: intra-iteration edges form a DAG; every operand slot of
        every node is fed at most once; nodes missing operands must carry a
        constant (the instruction immediate supplies the value).
        """
        self._check_acyclic()
        for node in self.nodes:
            feeds: dict[int, int] = {}
            for edge in self._in_edges[node.node_id]:
                if edge.is_ordering:
                    continue
                feeds[edge.operand_index] = feeds.get(edge.operand_index, 0) + 1
            for slot, count in feeds.items():
                if count > 1:
                    raise DFGError(
                        f"operand {slot} of '{node.name}' fed by {count} edges"
                    )
            arity = OP_ARITY[node.op]
            missing = arity - len(feeds)
            if missing > 1:
                raise DFGError(
                    f"'{node.name}' ({node.op.name}) missing {missing} operands"
                )
            if missing == 1 and node.const is None and node.op is not Opcode.SEL:
                raise DFGError(
                    f"'{node.name}' ({node.op.name}) missing an operand and "
                    "has no constant"
                )

    def _check_acyclic(self) -> None:
        order = self._topo_order_distance_zero()
        if order is None:
            raise DFGError(
                f"intra-iteration edges of '{self.name}' contain a cycle"
            )

    def _topo_order_distance_zero(self) -> list[int] | None:
        in_degree = {node_id: 0 for node_id in self._nodes}
        for edge in self._edges:
            if edge.distance == 0:
                in_degree[edge.dst] += 1
        ready = sorted(nid for nid, deg in in_degree.items() if deg == 0)
        order: list[int] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for edge in self._out_edges[current]:
                if edge.distance != 0:
                    continue
                in_degree[edge.dst] -= 1
                if in_degree[edge.dst] == 0:
                    ready.append(edge.dst)
        if len(order) != len(self._nodes):
            return None
        return order

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def arrays_read(self) -> set[str]:
        """Names of arrays read by LOAD nodes."""
        return {
            node.access.array for node in self.nodes
            if node.op is Opcode.LOAD and node.access is not None
        }

    def arrays_written(self) -> set[str]:
        """Names of arrays written by STORE nodes."""
        return {
            node.access.array for node in self.nodes
            if node.op is Opcode.STORE and node.access is not None
        }

    def structural_state(self) -> tuple:
        """A hashable snapshot of everything that defines this DFG:
        iteration space, nodes in id order (op, name, const, access,
        annotations), and edges in insertion order.

        Two compilations are bit-identical exactly when their states are
        equal — the basis of the variant layer's lowering invariant.
        """
        nodes = tuple(
            (node.node_id, node.op, node.name, node.const, node.access,
             tuple(sorted(node.annotations.items())))
            for node in self.nodes
        )
        edges = tuple(
            (edge.src, edge.dst, edge.operand_index, edge.distance)
            for edge in self._edges
        )
        return (self.loop_dims, self.trip_counts, nodes, edges)

    def structurally_equal(self, other: "DFG") -> bool:
        """True when ``other`` has the identical node/edge structure
        (names of the DFGs themselves are ignored)."""
        return self.structural_state() == other.structural_state()

    def subgraph_edges(self, node_ids: Iterable[int]) -> list[DFGEdge]:
        """Edges with both endpoints inside ``node_ids`` (any distance)."""
        members = set(node_ids)
        return [
            edge for edge in self._edges
            if edge.src in members and edge.dst in members
        ]

    def summary(self) -> str:
        """One-line characteristics string (Table 2 style)."""
        return (
            f"{self.name}: {self.num_nodes} nodes "
            f"({len(self.compute_nodes)} compute, "
            f"{len(self.memory_nodes)} memory), {self.num_edges} edges"
        )

    def __repr__(self) -> str:
        return f"DFG({self.name!r}, nodes={self.num_nodes}, edges={self.num_edges})"
