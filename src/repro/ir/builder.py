"""Fluent construction helper for DFGs.

The frontend lowers parsed kernels through this builder; tests and examples
also use it directly to assemble small graphs:

    builder = DFGBuilder("axpy", trip_counts=(64,))
    x = builder.load("x", coeffs=(1,))
    y = builder.load("y", coeffs=(1,))
    ax = builder.op(Opcode.MUL, x, const=3)
    s = builder.op(Opcode.ADD, ax, y)
    builder.store("y", s, coeffs=(1,))
    dfg = builder.build()
"""

from __future__ import annotations

from repro.errors import DFGError
from repro.ir.graph import DFG
from repro.ir.node import AffineAccess, DFGNode
from repro.ir.ops import OP_ARITY, Opcode


class DFGBuilder:
    """Incrementally build a validated :class:`DFG`."""

    def __init__(self, name: str = "dfg",
                 trip_counts: tuple[int, ...] = (1,)) -> None:
        self._dfg = DFG(name, loop_dims=len(trip_counts),
                        trip_counts=trip_counts)
        self._built = False

    @property
    def dfg(self) -> DFG:
        """The graph under construction (also returned by :meth:`build`)."""
        return self._dfg

    def op(self, opcode: Opcode, *operands: DFGNode, const: int | None = None,
           name: str = "", distances: tuple[int, ...] | None = None) -> DFGNode:
        """Add a compute node fed by ``operands`` in operand-slot order.

        ``distances`` optionally gives the inter-iteration distance of each
        incoming edge (defaults to all zero).
        """
        self._check_open()
        node = self._dfg.add_node(opcode, name=name, const=const)
        dists = distances or (0,) * len(operands)
        if len(dists) != len(operands):
            raise DFGError("distances length must match operand count")
        for slot, (operand, distance) in enumerate(zip(operands, dists)):
            self._dfg.add_edge(operand, node, operand_index=slot,
                               distance=distance)
        # Remaining operand slots may be filled later (e.g. a recurrence
        # edge closing an accumulator); build() validates completeness.
        return node

    def load(self, array: str, base: int = 0,
             coeffs: tuple[int, ...] = (), name: str = "") -> DFGNode:
        """Add a LOAD node with an affine access descriptor."""
        self._check_open()
        access = AffineAccess(array, base=base, coeffs=coeffs)
        return self._dfg.add_node(Opcode.LOAD, name=name, access=access)

    def store(self, array: str, value: DFGNode, base: int = 0,
              coeffs: tuple[int, ...] = (), name: str = "",
              distance: int = 0) -> DFGNode:
        """Add a STORE node writing ``value`` through an affine access."""
        self._check_open()
        access = AffineAccess(array, base=base, coeffs=coeffs)
        node = self._dfg.add_node(Opcode.STORE, name=name, access=access)
        self._dfg.add_edge(value, node, operand_index=0, distance=distance)
        return node

    def recurrence(self, src: DFGNode, dst: DFGNode, operand_index: int,
                   distance: int = 1) -> None:
        """Add a loop-carried edge (``distance >= 1``)."""
        self._check_open()
        if distance < 1:
            raise DFGError("recurrence edges need distance >= 1")
        self._dfg.add_edge(src, dst, operand_index=operand_index,
                           distance=distance)

    def build(self) -> DFG:
        """Validate and return the finished graph."""
        self._dfg.validate()
        self._built = True
        return self._dfg

    def _check_open(self) -> None:
        if self._built:
            raise DFGError("builder already finished; create a new one")
