"""DFG nodes and affine memory-access descriptors."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.ops import Opcode, is_compute_op, is_memory_op


@dataclass(frozen=True)
class AffineAccess:
    """Affine array access ``array[base + sum_k coeffs[k] * iv[k]]``.

    CGRA memory units resolve addresses with address-generation hardware
    configured with a base and per-loop-dimension strides, so address
    arithmetic never appears as DFG nodes (consistent with the paper's
    Table 2 node counts).  ``coeffs`` has one entry per loop dimension of the
    kernel's iteration space, outermost first.
    """

    array: str
    base: int = 0
    coeffs: tuple[int, ...] = ()

    def address(self, indices: tuple[int, ...]) -> int:
        """Element offset within ``array`` for one iteration-space point."""
        if len(indices) < len(self.coeffs):
            raise ValueError(
                f"access to '{self.array}' needs {len(self.coeffs)} loop "
                f"indices, got {len(indices)}"
            )
        offset = self.base
        for coeff, index in zip(self.coeffs, indices):
            offset += coeff * index
        return offset

    def describe(self) -> str:
        """Human-readable form, e.g. ``A[16*i0 + i1 + 3]``."""
        terms = [
            f"{coeff}*i{dim}" if coeff != 1 else f"i{dim}"
            for dim, coeff in enumerate(self.coeffs)
            if coeff != 0
        ]
        if self.base or not terms:
            terms.append(str(self.base))
        return f"{self.array}[{' + '.join(terms)}]"


@dataclass
class DFGNode:
    """One operation of the dataflow graph.

    Attributes:
        node_id: Dense integer id, unique within the owning DFG.
        op: The operation this node executes.
        name: Stable human-readable name (frontend-assigned).
        const: Optional immediate operand (folded into the instruction's
            8-bit constant field, sign-extended at execution).
        access: Memory access descriptor; required iff ``op`` is LOAD/STORE.
    """

    node_id: int
    op: Opcode
    name: str = ""
    const: int | None = None
    access: AffineAccess | None = None
    annotations: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"n{self.node_id}"
        if is_memory_op(self.op) and self.access is None:
            raise ValueError(f"{self.op.name} node '{self.name}' needs an access")
        if is_compute_op(self.op) and self.access is not None:
            raise ValueError(f"compute node '{self.name}' cannot have an access")

    @property
    def is_compute(self) -> bool:
        """True if this node runs on a plain ALU."""
        return is_compute_op(self.op)

    @property
    def is_memory(self) -> bool:
        """True if this node needs a memory-capable unit."""
        return is_memory_op(self.op)

    def __repr__(self) -> str:
        extra = ""
        if self.const is not None:
            extra = f", const={self.const}"
        if self.access is not None:
            extra = f", {self.access.describe()}"
        return f"DFGNode({self.node_id}, {self.op.name}{extra})"
