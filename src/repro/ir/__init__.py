"""Dataflow-graph intermediate representation.

The IR is the substrate shared by the frontend, the motif subsystem, the
mappers, and the simulator.  A :class:`~repro.ir.graph.DFG` is a DAG of
:class:`~repro.ir.node.DFGNode` objects whose edges carry an operand index
and an inter-iteration *distance* (0 for intra-iteration dependencies).
"""

from repro.ir.ops import Opcode, OP_LATENCY, is_compute_op, is_memory_op
from repro.ir.node import AffineAccess, DFGNode
from repro.ir.graph import DFG, DFGEdge
from repro.ir.builder import DFGBuilder
from repro.ir.analysis import (
    asap_schedule,
    alap_schedule,
    critical_path_length,
    recurrence_mii,
    topological_order,
)
from repro.ir.interpreter import DFGInterpreter, MemoryImage

__all__ = [
    "AffineAccess",
    "DFG",
    "DFGBuilder",
    "DFGEdge",
    "DFGInterpreter",
    "DFGNode",
    "MemoryImage",
    "OP_LATENCY",
    "Opcode",
    "alap_schedule",
    "asap_schedule",
    "critical_path_length",
    "is_compute_op",
    "is_memory_op",
    "recurrence_mii",
    "topological_order",
]
