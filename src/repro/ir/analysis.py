"""Scheduling-oriented DFG analyses.

These feed the modulo-scheduling mappers: topological order and ASAP/ALAP
schedules for placement priorities, and the recurrence-constrained minimum
initiation interval (RecMII) via a Bellman-Ford feasibility check.
"""

from __future__ import annotations

from repro.errors import DFGError
from repro.ir.graph import DFG
from repro.ir.ops import OP_LATENCY


def topological_order(dfg: DFG) -> list[int]:
    """Node ids in a topological order of the intra-iteration DAG."""
    in_degree = {node.node_id: 0 for node in dfg.nodes}
    for edge in dfg.edges:
        if edge.distance == 0:
            in_degree[edge.dst] += 1
    ready = sorted(nid for nid, deg in in_degree.items() if deg == 0)
    order: list[int] = []
    while ready:
        current = ready.pop(0)
        order.append(current)
        for edge in dfg.out_edges(current):
            if edge.distance != 0:
                continue
            in_degree[edge.dst] -= 1
            if in_degree[edge.dst] == 0:
                ready.append(edge.dst)
    if len(order) != dfg.num_nodes:
        raise DFGError(f"'{dfg.name}' intra-iteration edges are cyclic")
    return order


def asap_schedule(dfg: DFG) -> dict[int, int]:
    """Earliest start cycle per node, ignoring resource limits."""
    schedule: dict[int, int] = {}
    for node_id in topological_order(dfg):
        earliest = 0
        for edge in dfg.in_edges(node_id):
            if edge.distance != 0:
                continue
            latency = OP_LATENCY[dfg.node(edge.src).op]
            earliest = max(earliest, schedule[edge.src] + latency)
        schedule[node_id] = earliest
    return schedule


def alap_schedule(dfg: DFG, horizon: int | None = None) -> dict[int, int]:
    """Latest start cycle per node against ``horizon`` (default: ASAP span)."""
    asap = asap_schedule(dfg)
    if horizon is None:
        horizon = max(asap.values(), default=0)
    schedule: dict[int, int] = {}
    for node_id in reversed(topological_order(dfg)):
        latest = horizon
        latency = OP_LATENCY[dfg.node(node_id).op]
        for edge in dfg.out_edges(node_id):
            if edge.distance != 0:
                continue
            latest = min(latest, schedule[edge.dst] - latency)
        schedule[node_id] = latest
    return schedule


def critical_path_length(dfg: DFG) -> int:
    """Length (cycles) of the longest intra-iteration dependence chain."""
    asap = asap_schedule(dfg)
    if not asap:
        return 0
    return max(
        asap[node.node_id] + OP_LATENCY[node.op] for node in dfg.nodes
    )


def _feasible_at_ii(dfg: DFG, ii: int) -> bool:
    """Bellman-Ford feasibility of constraints sigma(dst) >= sigma(src)
    + latency - II * distance for every edge.

    Infeasible iff the constraint graph has a positive-weight cycle, which
    happens exactly when some recurrence circuit needs more than ``ii``
    cycles per iteration of slack.
    """
    ids = [node.node_id for node in dfg.nodes]
    sigma = {node_id: 0 for node_id in ids}
    edges = [
        (edge.src, edge.dst,
         OP_LATENCY[dfg.node(edge.src).op] - ii * edge.distance)
        for edge in dfg.edges
    ]
    for _ in range(len(ids)):
        changed = False
        for src, dst, weight in edges:
            candidate = sigma[src] + weight
            if candidate > sigma[dst]:
                sigma[dst] = candidate
                changed = True
        if not changed:
            return True
    # One more relaxation round still changing => positive cycle.
    for src, dst, weight in edges:
        if sigma[src] + weight > sigma[dst]:
            return False
    return True


def recurrence_mii(dfg: DFG, max_ii: int = 64) -> int:
    """Smallest II for which every recurrence circuit is schedulable.

    Returns 1 when the graph has no loop-carried cycles.  Raises
    :class:`DFGError` if no II up to ``max_ii`` works (which indicates a
    malformed graph, e.g. a distance-0 cycle).
    """
    low, high = 1, max_ii
    if not _feasible_at_ii(dfg, high):
        raise DFGError(f"'{dfg.name}' unschedulable even at II={max_ii}")
    if not any(edge.distance > 0 for edge in dfg.edges):
        return 1
    while low < high:
        mid = (low + high) // 2
        if _feasible_at_ii(dfg, mid):
            high = mid
        else:
            low = mid + 1
    return low
