"""Reference interpreter: the golden model the simulator is checked against.

The interpreter executes a DFG over its whole iteration space with exact
16-bit semantics.  Values crossing iterations (``distance > 0`` edges) are
read from the producing node's value ``distance`` iterations ago; before the
first producing iteration they read as the consumer's initialization value
(0 unless a node annotation says otherwise), matching how the statically
scheduled fabric primes its registers.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import SimulationError
from repro.ir.analysis import topological_order
from repro.ir.graph import DFG
from repro.ir.ops import OP_ARITY, Opcode, evaluate, to_unsigned


class MemoryImage:
    """A named collection of 16-bit word arrays (models SPM contents)."""

    def __init__(self, arrays: dict[str, list[int]] | None = None) -> None:
        self._arrays: dict[str, list[int]] = {}
        for name, values in (arrays or {}).items():
            self._arrays[name] = [to_unsigned(value) for value in values]

    def ensure(self, name: str, size: int) -> None:
        """Create ``name`` zero-filled (or grow it) to at least ``size``."""
        current = self._arrays.setdefault(name, [])
        if len(current) < size:
            current.extend([0] * (size - len(current)))

    def read(self, name: str, offset: int) -> int:
        try:
            array = self._arrays[name]
        except KeyError:
            raise SimulationError(f"read from unknown array '{name}'") from None
        if not 0 <= offset < len(array):
            raise SimulationError(
                f"read '{name}'[{offset}] out of bounds (size {len(array)})"
            )
        return array[offset]

    def write(self, name: str, offset: int, value: int) -> None:
        try:
            array = self._arrays[name]
        except KeyError:
            raise SimulationError(f"write to unknown array '{name}'") from None
        if not 0 <= offset < len(array):
            raise SimulationError(
                f"write '{name}'[{offset}] out of bounds (size {len(array)})"
            )
        array[offset] = to_unsigned(value)

    def array(self, name: str) -> list[int]:
        """A copy of one array's contents."""
        return list(self._arrays[name])

    @property
    def names(self) -> list[str]:
        return sorted(self._arrays)

    def copy(self) -> "MemoryImage":
        return MemoryImage({name: list(vals) for name, vals in self._arrays.items()})

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemoryImage):
            return NotImplemented
        return self._arrays == other._arrays


def required_array_sizes(dfg: DFG) -> dict[str, int]:
    """Max element offset + 1 touched per array over the iteration space.

    Walks the corner points of the iteration space per access (affine
    accesses reach their extrema at corners), so it is exact and cheap.
    """
    sizes: dict[str, int] = defaultdict(int)
    for node in dfg.memory_nodes:
        access = node.access
        assert access is not None
        max_offset = access.base
        for dim, coeff in enumerate(access.coeffs):
            extent = dfg.trip_counts[dim] - 1 if dim < len(dfg.trip_counts) else 0
            if coeff > 0:
                max_offset += coeff * extent
        sizes[access.array] = max(sizes[access.array], max_offset + 1)
    return dict(sizes)


class DFGInterpreter:
    """Execute a DFG over its iteration space against a memory image."""

    def __init__(self, dfg: DFG) -> None:
        self.dfg = dfg
        self._order = topological_order(dfg)

    def prepare_memory(self, memory: MemoryImage | None = None,
                       fill: int | None = None) -> MemoryImage:
        """Size every array the DFG touches; optionally pattern-fill reads.

        With ``fill`` given, arrays that are read get deterministic nonzero
        contents ``(fill + 7 * index) mod 2^16`` so simulator mismatches
        cannot hide behind zeros.
        """
        memory = memory or MemoryImage()
        sizes = required_array_sizes(self.dfg)
        for name, size in sizes.items():
            memory.ensure(name, size)
        if fill is not None:
            for name in self.dfg.arrays_read():
                array = memory.array(name)
                memory.ensure(name, len(array))
                for index in range(len(array)):
                    if array[index] == 0:
                        memory.write(name, index,
                                     to_unsigned(fill + 7 * index))
        return memory

    def run(self, memory: MemoryImage, iterations: int | None = None,
            ) -> dict[int, list[int]]:
        """Execute ``iterations`` points (default: all); mutates ``memory``.

        Returns the per-node value history: ``history[node_id][k]`` is the
        value node produced in iteration ``k`` (STORE nodes record the value
        they wrote).
        """
        total = self.dfg.iterations if iterations is None else iterations
        history: dict[int, list[int]] = {
            node.node_id: [] for node in self.dfg.nodes
        }
        for k in range(total):
            indices = self.dfg.iteration_indices(k)
            values: dict[int, int] = {}
            for node_id in self._order:
                node = self.dfg.node(node_id)
                operands = self._gather_operands(node_id, k, values, history)
                if node.op is Opcode.LOAD:
                    assert node.access is not None
                    result = memory.read(node.access.array,
                                         node.access.address(indices))
                elif node.op is Opcode.STORE:
                    assert node.access is not None
                    value = operands.get(0)
                    if value is None and node.const is not None:
                        value = to_unsigned(node.const)
                    if value is None:
                        raise SimulationError(
                            f"store '{node.name}' has no value in iter {k}"
                        )
                    memory.write(node.access.array,
                                 node.access.address(indices), value)
                    result = value
                else:
                    result = self._execute_compute(node, operands)
                values[node_id] = result
                history[node_id].append(result)
        return history

    def _gather_operands(self, node_id: int, iteration: int,
                         values: dict[int, int],
                         history: dict[int, list[int]]) -> dict[int, int]:
        operands: dict[int, int] = {}
        for edge in self.dfg.in_edges(node_id):
            if edge.is_ordering:
                continue
            if edge.distance == 0:
                operands[edge.operand_index] = values[edge.src]
            else:
                source_iter = iteration - edge.distance
                if source_iter >= 0:
                    operands[edge.operand_index] = history[edge.src][source_iter]
                else:
                    init = self.dfg.node(node_id).annotations.get("init", 0)
                    operands[edge.operand_index] = to_unsigned(int(init))
        return operands

    def _execute_compute(self, node, operands: dict[int, int]) -> int:
        """Build the full argument list; the instruction's constant fills
        the (single) unfed operand slot, whichever side it is on."""
        arity = OP_ARITY[node.op]
        args: list[int] = []
        const_used = False
        for slot in range(arity):
            if slot in operands:
                args.append(operands[slot])
            elif node.const is not None and not const_used:
                args.append(to_unsigned(node.const))
                const_used = True
            elif node.op is Opcode.SEL and slot == 2:
                args.append(1)  # unpredicated select takes the first input
            else:
                raise SimulationError(
                    f"'{node.name}' missing operand {slot}"
                )
        return evaluate(node.op, args)
