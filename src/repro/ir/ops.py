"""Operation set of the modeled CGRAs.

The Plaid paper's ALUs are 16-bit units supporting "ADD, MUL, SHIFT, and
various bit-wise operations, totalling 15 operations"; loads and stores are
handled by memory-capable units (the ALSU in Plaid).  We model exactly that
op budget: 15 compute opcodes plus LOAD and STORE.
"""

from __future__ import annotations

import enum

WORD_BITS = 16
WORD_MASK = (1 << WORD_BITS) - 1
WORD_SIGN = 1 << (WORD_BITS - 1)


class Opcode(enum.Enum):
    """Every operation a functional unit can execute."""

    # Arithmetic
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    ABS = "abs"
    # Shifts
    SHL = "shl"
    SHR = "shr"   # arithmetic shift right
    LSR = "lsr"   # logical shift right
    # Bit-wise
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    # Comparison / selection (predication support)
    CMP = "cmp"   # set-less-than (signed)
    SEL = "sel"   # a if predicate held in const/third input else b
    MIN = "min"
    MAX = "max"
    # Memory (ALSU / memory-capable PEs only)
    LOAD = "load"
    STORE = "store"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Opcode.{self.name}"


#: Compute opcodes, in a stable order (15 ops, matching the paper's ALU).
COMPUTE_OPS: tuple[Opcode, ...] = (
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.ABS,
    Opcode.SHL,
    Opcode.SHR,
    Opcode.LSR,
    Opcode.AND,
    Opcode.OR,
    Opcode.XOR,
    Opcode.NOT,
    Opcode.CMP,
    Opcode.SEL,
    Opcode.MIN,
    Opcode.MAX,
)

MEMORY_OPS: tuple[Opcode, ...] = (Opcode.LOAD, Opcode.STORE)

#: Single-cycle latency for every op (statically scheduled CGRA convention).
OP_LATENCY: dict[Opcode, int] = {op: 1 for op in Opcode}

#: Number of data operands each op consumes (immediates excluded).
OP_ARITY: dict[Opcode, int] = {
    Opcode.ADD: 2,
    Opcode.SUB: 2,
    Opcode.MUL: 2,
    Opcode.ABS: 1,
    Opcode.SHL: 2,
    Opcode.SHR: 2,
    Opcode.LSR: 2,
    Opcode.AND: 2,
    Opcode.OR: 2,
    Opcode.XOR: 2,
    Opcode.NOT: 1,
    Opcode.CMP: 2,
    Opcode.SEL: 3,
    Opcode.MIN: 2,
    Opcode.MAX: 2,
    Opcode.LOAD: 0,
    Opcode.STORE: 1,
}

#: Ops whose two data operands commute (used by mappers to relax routing).
COMMUTATIVE_OPS: frozenset[Opcode] = frozenset(
    {Opcode.ADD, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR,
     Opcode.MIN, Opcode.MAX}
)


def is_compute_op(op: Opcode) -> bool:
    """True for ops executable on a plain ALU (not LOAD/STORE)."""
    return op not in MEMORY_OPS


def is_memory_op(op: Opcode) -> bool:
    """True for LOAD and STORE."""
    return op in MEMORY_OPS


def to_signed(value: int) -> int:
    """Interpret a 16-bit pattern as a signed integer."""
    value &= WORD_MASK
    return value - (1 << WORD_BITS) if value & WORD_SIGN else value


def to_unsigned(value: int) -> int:
    """Wrap an integer to its 16-bit pattern."""
    return value & WORD_MASK


def evaluate(op: Opcode, operands: list[int], const: int | None = None) -> int:
    """Execute one compute op on 16-bit wrapped operands.

    ``operands`` are raw 16-bit patterns; the result is a 16-bit pattern.
    ``const`` supplies the immediate for ops with a missing data operand
    (the frontend folds 8-bit constants into the instruction, as the Plaid
    configuration format does).
    """
    args = list(operands)
    arity = OP_ARITY[op]
    if const is not None and len(args) < arity:
        args.append(to_unsigned(const))
    if len(args) != arity:
        raise ValueError(
            f"{op.name} expects {arity} operands, got {len(args)}"
        )
    a = to_signed(args[0]) if args else 0
    b = to_signed(args[1]) if len(args) > 1 else 0
    if op is Opcode.ADD:
        result = a + b
    elif op is Opcode.SUB:
        result = a - b
    elif op is Opcode.MUL:
        result = a * b
    elif op is Opcode.ABS:
        result = abs(a)
    elif op is Opcode.SHL:
        result = a << (args[1] & 0xF)
    elif op is Opcode.SHR:
        result = a >> (args[1] & 0xF)
    elif op is Opcode.LSR:
        result = (args[0] & WORD_MASK) >> (args[1] & 0xF)
    elif op is Opcode.AND:
        result = args[0] & args[1]
    elif op is Opcode.OR:
        result = args[0] | args[1]
    elif op is Opcode.XOR:
        result = args[0] ^ args[1]
    elif op is Opcode.NOT:
        result = ~args[0]
    elif op is Opcode.CMP:
        result = 1 if a < b else 0
    elif op is Opcode.SEL:
        predicate = args[2] & WORD_MASK
        result = args[0] if predicate else args[1]
    elif op is Opcode.MIN:
        result = min(a, b)
    elif op is Opcode.MAX:
        result = max(a, b)
    else:
        raise ValueError(f"{op.name} is not a compute op")
    return to_unsigned(result)
