"""Graphviz (dot) export of DFGs and hierarchical DFGs, for inspection."""

from __future__ import annotations

from repro.ir.graph import DFG


def dfg_to_dot(dfg: DFG, highlight: dict[int, str] | None = None) -> str:
    """Render a DFG as a ``dot`` digraph string.

    ``highlight`` maps node ids to fill colors (the motif explorer example
    colors each motif differently).
    """
    highlight = highlight or {}
    lines = [f'digraph "{dfg.name}" {{', "  rankdir=TB;",
             '  node [shape=box, fontname="monospace"];']
    for node in dfg.nodes:
        label = f"{node.name}\\n{node.op.name}"
        if node.access is not None:
            label += f"\\n{node.access.describe()}"
        if node.const is not None:
            label += f"\\nconst={node.const}"
        style = ""
        color = highlight.get(node.node_id)
        if color:
            style = f', style=filled, fillcolor="{color}"'
        lines.append(f'  n{node.node_id} [label="{label}"{style}];')
    for edge in dfg.edges:
        attrs = []
        if edge.distance > 0:
            attrs.append(f'label="d={edge.distance}"')
            attrs.append("style=dashed")
        attr_text = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f"  n{edge.src} -> n{edge.dst}{attr_text};")
    lines.append("}")
    return "\n".join(lines)
