"""Compiler mapping time (Section 6.2: "The compiler typically maps the
kernel in a few minutes").

Times every *registered* temporal mapper end to end on a representative
kernel set via the mapper registry (:mod:`repro.mapping.engine`), so a
newly registered mapper is benchmarked automatically.  All mappers run on
the Plaid fabric — Figure 18's premise is that the generic mappers work
there too.  This Python implementation maps each kernel in well under a
minute; the assertion guards against pathological hot-path regressions
(CI runs this with a tightened ``$REPRO_MAPPING_BUDGET_S``), the printed
per-mapper numbers are the artifact.

``test_race_speedup`` benchmarks the portfolio racer (the ``race``
composite, :mod:`repro.mapping.race`) against the sequential ``best``
baseline on the same kernel set and always checks winner bit-identity;
the geomean wall-clock floor is asserted only when
``$REPRO_RACE_SPEEDUP_MIN`` is set (CI sets 1.3 on its multi-core
runners — a 1-CPU host cannot promise wall-clock wins).
"""

import math
import os
import time

from repro.arch import make_plaid
from repro.mapping.engine import available_mappers, default_pool
from repro.workloads import get_dfg

KERNELS = ["atax_u2", "gemm_u4", "conv3x3", "jacobi_u4", "seidel"]

#: Hard per-(mapper, kernel) budget in seconds; CI tightens it.
BUDGET_S = float(os.environ.get("REPRO_MAPPING_BUDGET_S", "120"))

#: Geomean race-vs-best speedup floor; 0 (the default) reports without
#: asserting, so single-CPU and loaded hosts don't flake.
RACE_SPEEDUP_MIN = float(os.environ.get("REPRO_RACE_SPEEDUP_MIN", "0"))


def test_mapping_time(benchmark):
    mappers = available_mappers(kind="temporal")
    assert mappers, "mapper registry is empty"
    plaid = make_plaid()

    def run():
        timings = {}
        for info in mappers:
            for name in KERNELS:
                dfg = get_dfg(name)
                start = time.perf_counter()
                mapping = info.make(seed=2).map(dfg, plaid)
                timings[(info.key, name)] = (
                    time.perf_counter() - start, mapping.ii)
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    pool = default_pool().stats
    print()
    for info in mappers:
        total = sum(timings[(info.key, name)][0] for name in KERNELS)
        print(f"  {info.key} ({total:.2f}s total):")
        for name in KERNELS:
            seconds, ii = timings[(info.key, name)]
            print(f"    {name}: {seconds:.2f}s (II={ii})")
    print(f"  MRRG pool: {pool.created} created, {pool.adopted} adopted, "
          f"{pool.resets} in-place resets")
    # "A few minutes" in the paper's C++; anything beyond the budget here
    # is a regression in the search loops or the MRRG/router hot path.
    over = {key: seconds for key, (seconds, _ii) in timings.items()
            if seconds >= BUDGET_S}
    assert not over, f"kernels over the {BUDGET_S:.0f}s budget: {over}"


def test_race_speedup(benchmark):
    """The ``race`` composite vs sequential ``best`` on the bench kernels.

    Bit-identity of the winner is asserted unconditionally — the racer's
    whole contract is "same mapping, less wall clock".  The wall-clock
    floor is opt-in via ``$REPRO_RACE_SPEEDUP_MIN``.
    """
    from repro.eval.harness import _seed_for, build_arch
    from repro.mapping.engine import map_kernel

    arch = build_arch("st")

    def seeds(name):
        # The exact seeds the harness would use, so the conformance
        # claim covers the evaluation pipeline's configurations.
        return lambda key: _seed_for(name, "st", key)

    # Untimed warmup: MRRG pool fills, routing tables build, and (on
    # multi-core hosts) the race pool forks its workers once.
    for name in KERNELS:
        map_kernel("best", get_dfg(name), arch, seeds(name))
        map_kernel("race", get_dfg(name), arch, seeds(name))

    def run():
        timings = {}
        for name in KERNELS:
            dfg = get_dfg(name)
            start = time.perf_counter()
            best = map_kernel("best", dfg, arch, seeds(name))
            best_s = time.perf_counter() - start
            start = time.perf_counter()
            raced = map_kernel("race", get_dfg(name), arch, seeds(name))
            race_s = time.perf_counter() - start
            assert raced.ii == best.ii \
                and raced.placement == best.placement \
                and raced.routes == best.routes \
                and raced.stats.mapper == best.stats.mapper, \
                f"race winner diverged from best on {name}"
            timings[name] = (best_s, race_s)
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    ratios = []
    print()
    for name in KERNELS:
        best_s, race_s = timings[name]
        ratio = best_s / race_s if race_s > 0 else 1.0
        ratios.append(ratio)
        print(f"  {name}: best {best_s:.3f}s, race {race_s:.3f}s "
              f"({ratio:.2f}x)")
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    print(f"  geomean speedup: {geomean:.2f}x "
          f"(floor: {RACE_SPEEDUP_MIN or 'report-only'})")
    if RACE_SPEEDUP_MIN > 0:
        assert geomean >= RACE_SPEEDUP_MIN, (
            f"race geomean speedup {geomean:.2f}x below the "
            f"{RACE_SPEEDUP_MIN}x floor")
