"""Compiler mapping time (Section 6.2: "The compiler typically maps the
kernel in a few minutes").

Times every *registered* temporal mapper end to end on a representative
kernel set via the mapper registry (:mod:`repro.mapping.engine`), so a
newly registered mapper is benchmarked automatically.  All mappers run on
the Plaid fabric — Figure 18's premise is that the generic mappers work
there too.  This Python implementation maps each kernel in well under a
minute; the assertion guards against pathological hot-path regressions
(CI runs this with a tightened ``$REPRO_MAPPING_BUDGET_S``), the printed
per-mapper numbers are the artifact.
"""

import os
import time

from repro.arch import make_plaid
from repro.mapping.engine import available_mappers, default_pool
from repro.workloads import get_dfg

KERNELS = ["atax_u2", "gemm_u4", "conv3x3", "jacobi_u4", "seidel"]

#: Hard per-(mapper, kernel) budget in seconds; CI tightens it.
BUDGET_S = float(os.environ.get("REPRO_MAPPING_BUDGET_S", "120"))


def test_mapping_time(benchmark):
    mappers = available_mappers(kind="temporal")
    assert mappers, "mapper registry is empty"
    plaid = make_plaid()

    def run():
        timings = {}
        for info in mappers:
            for name in KERNELS:
                dfg = get_dfg(name)
                start = time.perf_counter()
                mapping = info.make(seed=2).map(dfg, plaid)
                timings[(info.key, name)] = (
                    time.perf_counter() - start, mapping.ii)
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    pool = default_pool().stats
    print()
    for info in mappers:
        total = sum(timings[(info.key, name)][0] for name in KERNELS)
        print(f"  {info.key} ({total:.2f}s total):")
        for name in KERNELS:
            seconds, ii = timings[(info.key, name)]
            print(f"    {name}: {seconds:.2f}s (II={ii})")
    print(f"  MRRG pool: {pool.created} created, {pool.adopted} adopted, "
          f"{pool.resets} in-place resets")
    # "A few minutes" in the paper's C++; anything beyond the budget here
    # is a regression in the search loops or the MRRG/router hot path.
    over = {key: seconds for key, (seconds, _ii) in timings.items()
            if seconds >= BUDGET_S}
    assert not over, f"kernels over the {BUDGET_S:.0f}s budget: {over}"
