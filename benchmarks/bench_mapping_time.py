"""Compiler mapping time (Section 6.2: "The compiler typically maps the
kernel in a few minutes").

Times the Plaid mapper end to end (motif generation + Algorithm 2) on a
representative kernel set.  This Python implementation maps each kernel in
well under a minute; the assertion only guards against pathological
regressions, the printed numbers are the artifact.
"""

import time

from repro.arch import make_plaid
from repro.mapping import PlaidMapper
from repro.workloads import get_dfg

KERNELS = ["atax_u2", "gemm_u4", "conv3x3", "jacobi_u4", "seidel"]


def test_mapping_time(benchmark):
    def run():
        timings = {}
        for name in KERNELS:
            dfg = get_dfg(name)
            start = time.perf_counter()
            mapping = PlaidMapper(seed=2).map(dfg, make_plaid())
            timings[name] = (time.perf_counter() - start, mapping.ii)
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, (seconds, ii) in timings.items():
        print(f"  {name}: {seconds:.2f}s (II={ii})")
    # "A few minutes" in the paper's C++; anything beyond that here is a
    # regression in the search loops.
    assert all(seconds < 120 for seconds, _ii in timings.values())
