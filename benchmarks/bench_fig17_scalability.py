"""Figure 17: scalability — 3x3 Plaid (36 FUs) vs 2x2 Plaid (16 FUs).

Paper: 1.71x average speedup on the DFGs the larger array can help
(recurrence-bound DFGs excluded); sub-linear because small DFGs saturate
and resource-II quantization caps the gain."""

from repro.eval import experiments


def test_fig17_scalability(figure):
    result = figure(experiments.fig17)
    average = result.average_speedup()
    # Meaningful scaling on the included set (paper: 1.71x).
    assert 1.2 < average < 2.2
    # Never anywhere near the 2.25x FU-ratio ceiling on average.
    assert average < 36 / 16
    # Recurrence-bound kernels were excluded, as in the paper.
    assert result.excluded
    speedups = [row.speedup for row in result.rows]
    assert sum(1 for s in speedups if s > 1.0) >= len(speedups) * 0.6
