"""Distributed-sweep plumbing time: shard partition and store merge.

Sharding fingerprints every grid cell and a merge re-reads every entry
of every source store, so both must stay negligible next to the
evaluations they orchestrate — a shard assignment of the full Table-2
grid and a four-way merge of a thousand entries are the artifacts
timed here.  CI runs this with a tightened
``$REPRO_DISTRIBUTED_BUDGET_S``; the assertion guards against
pathological regressions (per-cell arch re-signatures, per-entry
re-parsing in quadratic loops, non-atomic write fallbacks).
"""

import json
import os
import time

from repro.eval import parallel
from repro.eval.cache import ResultStore
from repro.eval.distributed import ShardSpec, merge_stores, shard_cells
from repro.eval.harness import clear_caches, configure_store, evaluate_kernel

#: Hard budget per timed stage, in seconds; CI tightens it.
BUDGET_S = float(os.environ.get("REPRO_DISTRIBUTED_BUDGET_S", "60"))

#: Synthetic merge load: shards x entries-per-shard.
MERGE_SHARDS = 4
ENTRIES_PER_SHARD = 250


def _synthetic_shards(root):
    """Shard stores holding byte-realistic entries under synthetic keys."""
    clear_caches()
    configure_store(None)
    seed_result = evaluate_kernel("dwconv", "plaid", use_store=False)
    template = ResultStore(root / "template")
    template.put("0" * 64, seed_result)
    text = template.entry_path("0" * 64).read_text()
    clear_caches()

    shard_roots = []
    for shard in range(MERGE_SHARDS):
        store = ResultStore(root / f"shard{shard}")
        for index in range(ENTRIES_PER_SHARD):
            fp = f"{shard * ENTRIES_PER_SHARD + index:064x}"
            store.put_raw(fp, text)
        shard_roots.append(store.root)
    return shard_roots


def test_distributed_plumbing_time(benchmark, tmp_path):
    cells = parallel.build_grid()               # the full Table-2 grid
    shard_roots = _synthetic_shards(tmp_path)

    def run():
        timings = {}
        start = time.perf_counter()
        subsets = [shard_cells(cells, ShardSpec(index, MERGE_SHARDS))
                   for index in range(1, MERGE_SHARDS + 1)]
        timings["shard_partition"] = time.perf_counter() - start
        start = time.perf_counter()
        report = merge_stores(shard_roots, tmp_path / "merged")
        timings["merge"] = time.perf_counter() - start
        return timings, subsets, report

    timings, subsets, report = benchmark.pedantic(run, rounds=1,
                                                  iterations=1)
    assert sum(len(s) for s in subsets) == len(cells)   # disjoint cover
    assert report.clean
    assert report.added == MERGE_SHARDS * ENTRIES_PER_SHARD
    print()
    print(f"  shard partition ({len(cells)} cells x "
          f"{MERGE_SHARDS} shards): {timings['shard_partition']:.3f}s")
    print(f"  merge ({report.added} entries from {MERGE_SHARDS} "
          f"stores): {timings['merge']:.3f}s")
    over = {stage: seconds for stage, seconds in timings.items()
            if seconds >= BUDGET_S}
    assert not over, f"stages over the {BUDGET_S:.0f}s budget: {over}"


def test_warm_merged_resweep_time(benchmark, tmp_path):
    """A warm re-sweep over a merged store is pure store reads — it must
    stay in the same class as the merge itself, not the evaluations."""
    grid = ["dwconv", "conv2x2", "gesum_u2", "atax_u2", "jacobi_u2"]
    arches = ["st", "spatial", "plaid"]
    cells = parallel.build_grid(grid, arches)
    shard_dirs = []
    for index in (1, 2):
        clear_caches()
        shard_dir = tmp_path / f"host{index}"
        configure_store(shard_dir)
        report = parallel.run_sweep(
            shard_cells(cells, ShardSpec(index, 2)), jobs=1)
        assert not report.failures
        shard_dirs.append(shard_dir)
    clear_caches()
    merge_stores(shard_dirs, tmp_path / "merged")

    def run():
        clear_caches()
        configure_store(tmp_path / "merged")
        return parallel.run_sweep(cells, jobs=1)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    clear_caches()
    assert report.evaluated == 0
    assert report.cached == len(cells)
    print()
    print(f"  warm merged re-sweep: {len(cells)} cells in "
          f"{report.seconds:.3f}s")
    assert report.seconds < BUDGET_S
