"""Figure 15: performance per area normalized to the ST baseline.

Paper: Plaid improves perf/area substantially (same performance in 54% of
the area); the spatial CGRA loses perf/area (similar area, lower
performance on partitioned kernels)."""

from repro.eval import experiments


def test_fig15_perf_per_area(figure):
    result = figure(experiments.fig15)
    _one, spatial_avg, plaid_avg = result.averages()
    # Plaid's perf/area gain: ~1/0.54 at performance parity.
    assert 1.3 < plaid_avg < 2.3
    # Spatial loses perf/area (paper shows well below 1).
    assert spatial_avg < 0.85
    # Stable improvement across domains (the paper's generality claim).
    from repro.workloads import get_workload
    by_domain: dict = {}
    for row in result.rows:
        domain = get_workload(row.workload).domain
        by_domain.setdefault(domain, []).append(row.normalized()[2])
    for domain, ratios in by_domain.items():
        mean = sum(ratios) / len(ratios)
        assert mean > 1.1, f"no perf/area win in {domain}"
