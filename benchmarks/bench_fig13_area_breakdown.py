"""Figure 13: Plaid fabric area breakdown (33,366 um^2 at 22nm FDSOI)."""

from repro.eval import experiments

PAPER = {"local_router": 0.09, "global_router": 0.30,
         "compute_config": 0.24, "comm_config": 0.21,
         "compute": 0.11, "other": 0.05}


def test_fig13_area_breakdown(figure):
    result = figure(experiments.fig13)
    assert abs(result.fabric_um2 - 33_366) < 40
    for module, expected in PAPER.items():
        assert abs(result.breakdown[module] - expected) < 0.01, module
    # Headline: 46% fabric area saving vs the spatio-temporal baseline.
    assert abs(result.st_ratio - 0.54) < 0.02
