"""Figure 19: domain specialization on ML kernels.

Paper (normalized to Plaid): general Plaid beats the ML-specialized
spatio-temporal CGRA (ST-ML consumes ~1.22x Plaid's energy and offers
~0.79x its perf/area); Plaid-ML improves further (~0.91x energy, ~1.16x
perf/area — i.e. 25.5% energy reduction and 1.46x perf/area vs ST-ML)."""

from repro.eval import experiments


def test_fig19_domain_specialization(figure):
    result = figure(experiments.fig19)
    energy = result.energy
    ppa = result.perf_per_area
    # Ordering on energy: ST > ST-ML > Plaid > Plaid-ML.
    assert energy["st"] > energy["st-ml"] > energy["plaid"] \
        > energy["plaid-ml"]
    # Ordering on perf/area: Plaid-ML > Plaid > ST-ML > ST.
    assert ppa["plaid-ml"] > ppa["plaid"] > ppa["st-ml"] > ppa["st"]
    # Magnitudes near the paper's.
    assert 1.05 < energy["st-ml"] < 1.45          # paper ~1.22
    assert 0.80 < energy["plaid-ml"] < 1.00       # paper ~0.91
    assert 1.05 < ppa["plaid-ml"] < 1.35          # paper ~1.16
    assert 0.60 < ppa["st-ml"] < 0.95             # paper ~0.79
