"""Figure 14: fabric energy normalized to the ST baseline.

Paper: Plaid reduces energy by ~42% vs the spatio-temporal CGRA and by
~28% vs the spatial CGRA (same perf at much lower power vs ST; better perf
at similar power vs spatial)."""

from repro.eval import experiments


def test_fig14_energy(figure):
    result = figure(experiments.fig14)
    _one, spatial_avg, plaid_avg = result.averages()
    # Plaid's headline: ~42% energy reduction (ours tracks power x cycles).
    assert 0.45 < plaid_avg < 0.75
    # Plaid more efficient than spatial as well (paper: ~28% lower).
    assert plaid_avg < spatial_avg
    # Per-kernel: Plaid below the baseline almost everywhere.
    plaid_ratios = [row.normalized()[2] for row in result.rows]
    below = sum(1 for r in plaid_ratios if r < 1.0)
    assert below >= 25
