"""Table 2: workload characteristics (nodes, compute nodes, motif cover).

Prints our DFG statistics side by side with the paper's rows and checks
they are the same order of magnitude (the frontend is ours, not LLVM, so
exact counts differ)."""

from repro.eval import experiments


def test_table2_workloads(figure):
    result = figure(experiments.table2)
    assert len(result.rows) == 30
    for row in result.rows:
        paper_nodes = row.paper[0]
        assert 0.4 * paper_nodes <= row.nodes <= 2.0 * paper_nodes
        # Motifs never cover more than the compute nodes.
        assert row.covered <= row.compute
    # Most DFGs get meaningful 3-node motif coverage.
    covered_fraction = sum(
        1 for row in result.rows if row.covered >= 0.3 * row.compute
    )
    assert covered_fraction >= 20
