"""Cycle-accurate simulation time: compiled and numpy engines vs. the
interpreted loop.

The paper's end-to-end claim rests on its cycle-accurate simulator; this
benchmark times the compiled schedule engine (:mod:`repro.sim.engine`)
and its vectorized numpy replay (:mod:`repro.sim.vector`) against the
interpreted reference loop
(:meth:`~repro.sim.machine.CGRASimulator.run_reference`) over the full
iteration space of a representative kernel set on the Plaid fabric.
All engines are bit-identical by invariant (the run asserts report
equality), so the printed per-kernel times and the geomean speedups are
the artifact; CI gates the hot paths with a per-kernel
``$REPRO_SIM_BUDGET_S`` budget, a ``$REPRO_SIM_SPEEDUP_MIN`` geomean
floor for the compiled engine (default 1.5x over interpreted), and a
``$REPRO_SIM_BATCH_SPEEDUP_MIN`` geomean floor for batched numpy
execution over sequential compiled execution (default 3x), and a
``$REPRO_NATIVE_SPEEDUP_MIN`` geomean floor for the native
(generated-C) engine of :mod:`repro.native` over the compiled engine
(default 2x; skipped when no C toolchain is available).
"""

import math
import os
import time

import pytest

from repro.arch import make_plaid
from repro.ir.interpreter import DFGInterpreter
from repro.mapping.engine import get_mapper
from repro.sim import CGRASimulator
from repro.workloads import get_dfg

KERNELS = ["atax_u2", "gemm_u4", "conv3x3", "jacobi_u4", "seidel"]

#: Hard per-(kernel, engine) budget in seconds; CI tightens it.
BUDGET_S = float(os.environ.get("REPRO_SIM_BUDGET_S", "60"))

#: Geomean speedup floor of compiled over interpreted execution.
SPEEDUP_MIN = float(os.environ.get("REPRO_SIM_SPEEDUP_MIN", "1.5"))

#: Geomean speedup floor of one batched numpy pass over running the
#: compiled engine window by window (the batched-throughput claim).
BATCH_SPEEDUP_MIN = float(
    os.environ.get("REPRO_SIM_BATCH_SPEEDUP_MIN", "3"))

#: Memory windows per kernel in the batched-throughput scenario.
BATCH_WINDOWS = int(os.environ.get("REPRO_SIM_BATCH_WINDOWS", "32"))

#: Geomean speedup floor of the native (generated-C) engine over the
#: compiled Python engine.  Conservative: measured speedups are an
#: order of magnitude above it.
NATIVE_SPEEDUP_MIN = float(os.environ.get("REPRO_NATIVE_SPEEDUP_MIN", "2"))

#: Simulation windows per engine (the compiled side pays compilation
#: once, inside its timed region — the batched multi-window scenario).
ROUNDS = 3


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _mappings():
    plaid = make_plaid()
    mapper = get_mapper("plaid")
    return {name: mapper.make(seed=2).map(get_dfg(name), plaid)
            for name in KERNELS}


def test_simulation_time(benchmark):
    mappings = _mappings()

    def run():
        timings = {}
        for name, mapping in mappings.items():
            memory = DFGInterpreter(mapping.dfg).prepare_memory(fill=3)
            compiled_sim = CGRASimulator(mapping)
            start = time.perf_counter()
            for _ in range(ROUNDS):
                compiled_sim.run(memory, verify=False)
            compiled_s = time.perf_counter() - start
            numpy_sim = CGRASimulator(mapping)
            start = time.perf_counter()
            for _ in range(ROUNDS):
                numpy_sim.run(memory, verify=False, engine="numpy")
            numpy_s = time.perf_counter() - start
            reference_sim = CGRASimulator(mapping)
            start = time.perf_counter()
            for _ in range(ROUNDS):
                reference_sim.run_reference(memory, verify=False)
            reference_s = time.perf_counter() - start
            # Conformance ride-along: identical reports, identical verify.
            got = compiled_sim.run(memory)
            want = reference_sim.run_reference(memory)
            vectored = numpy_sim.run(memory, engine="numpy")
            assert got == want == vectored, f"{name}: engines diverge"
            assert got.verified is True, f"{name}: {got.mismatches[:3]}"
            timings[name] = (compiled_s, numpy_s, reference_s, got.cycles)
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    speedups = []
    numpy_speedups = []
    for name in KERNELS:
        compiled_s, numpy_s, reference_s, cycles = timings[name]
        speedup = reference_s / compiled_s if compiled_s else float("inf")
        numpy_x = compiled_s / numpy_s if numpy_s else float("inf")
        speedups.append(speedup)
        numpy_speedups.append(numpy_x)
        print(f"  {name}: {cycles} cycles x{ROUNDS}, "
              f"compiled {compiled_s:.3f}s, numpy {numpy_s:.3f}s, "
              f"interpreted {reference_s:.3f}s "
              f"({speedup:.2f}x compiled, {numpy_x:.2f}x numpy/compiled)")
    geomean = _geomean(speedups)
    print(f"  geomean speedup: {geomean:.2f}x (floor {SPEEDUP_MIN:.2f}x); "
          f"numpy over compiled: {_geomean(numpy_speedups):.2f}x")

    over = {name: max(t[0], t[1]) for name, t in timings.items()
            if max(t[0], t[1]) >= BUDGET_S}
    assert not over, f"kernels over the {BUDGET_S:.0f}s budget: {over}"
    assert geomean >= SPEEDUP_MIN, (
        f"compiled engine geomean speedup {geomean:.2f}x below the "
        f"{SPEEDUP_MIN:.2f}x floor: {dict(zip(KERNELS, speedups))}"
    )


def test_batched_simulation_throughput(benchmark):
    """Batched numpy execution (B windows stacked on one array axis)
    vs. the compiled engine running the same windows sequentially —
    the many-input verification scenario the vector backend targets."""
    mappings = _mappings()

    def run():
        timings = {}
        for name, mapping in mappings.items():
            interpreter = DFGInterpreter(mapping.dfg)
            memories = [interpreter.prepare_memory(fill=f % 7 + 1)
                        for f in range(BATCH_WINDOWS)]
            simulator = CGRASimulator(mapping)
            start = time.perf_counter()
            batched = simulator.run_batch(memories, verify=False,
                                          engine="numpy")
            numpy_s = time.perf_counter() - start
            start = time.perf_counter()
            sequential = simulator.run_batch(memories, verify=False,
                                             engine="compiled")
            compiled_s = time.perf_counter() - start
            assert batched == sequential, f"{name}: engines diverge"
            timings[name] = (numpy_s, compiled_s)
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    speedups = []
    for name in KERNELS:
        numpy_s, compiled_s = timings[name]
        speedup = compiled_s / numpy_s if numpy_s else float("inf")
        speedups.append(speedup)
        rate = BATCH_WINDOWS / numpy_s if numpy_s else float("inf")
        print(f"  {name}: {BATCH_WINDOWS} windows, batched numpy "
              f"{numpy_s:.3f}s ({rate:.0f} windows/s), sequential "
              f"compiled {compiled_s:.3f}s ({speedup:.2f}x)")
    geomean = _geomean(speedups)
    print(f"  geomean batched speedup: {geomean:.2f}x "
          f"(floor {BATCH_SPEEDUP_MIN:.2f}x)")

    over = {name: max(t) for name, t in timings.items()
            if max(t) >= BUDGET_S}
    assert not over, f"kernels over the {BUDGET_S:.0f}s budget: {over}"
    assert geomean >= BATCH_SPEEDUP_MIN, (
        f"batched numpy geomean speedup {geomean:.2f}x below the "
        f"{BATCH_SPEEDUP_MIN:.2f}x floor: {dict(zip(KERNELS, speedups))}"
    )


def _native_available() -> bool:
    from repro.native import toolchain_available

    return toolchain_available()


@pytest.mark.skipif(not _native_available(),
                    reason="native backend needs a C toolchain")
def test_native_simulation_speedup(benchmark):
    """Native (generated-C) engine vs the compiled Python engine over
    the same kernels, conformance-checked; the one-time codegen +
    compile happens in a warm pass outside the timed region (it is
    amortized across every simulation of the schedule by the disk
    cache)."""
    mappings = _mappings()

    def run():
        timings = {}
        for name, mapping in mappings.items():
            memory = DFGInterpreter(mapping.dfg).prepare_memory(fill=3)
            simulator = CGRASimulator(mapping)
            simulator.run(memory, verify=False, engine="native")   # warm
            simulator.run(memory, verify=False, engine="compiled")
            start = time.perf_counter()
            for _ in range(ROUNDS):
                simulator.run(memory, verify=False, engine="compiled")
            compiled_s = time.perf_counter() - start
            start = time.perf_counter()
            for _ in range(ROUNDS):
                simulator.run(memory, verify=False, engine="native")
            native_s = time.perf_counter() - start
            # Conformance ride-along: identical reports, identical verify.
            got = simulator.run(memory, engine="native")
            want = simulator.run(memory, engine="compiled")
            assert got == want, f"{name}: native diverges from compiled"
            assert got.verified is True, f"{name}: {got.mismatches[:3]}"
            timings[name] = (native_s, compiled_s, got.cycles)
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    speedups = []
    for name in KERNELS:
        native_s, compiled_s, cycles = timings[name]
        speedup = compiled_s / native_s if native_s else float("inf")
        speedups.append(speedup)
        print(f"  {name}: {cycles} cycles x{ROUNDS}, "
              f"native {native_s:.4f}s, compiled {compiled_s:.3f}s "
              f"({speedup:.2f}x)")
    geomean = _geomean(speedups)
    print(f"  geomean native speedup: {geomean:.2f}x "
          f"(floor {NATIVE_SPEEDUP_MIN:.2f}x)")
    over = {name: t[0] for name, t in timings.items() if t[0] >= BUDGET_S}
    assert not over, f"kernels over the {BUDGET_S:.0f}s budget: {over}"
    assert geomean >= NATIVE_SPEEDUP_MIN, (
        f"native engine geomean speedup {geomean:.2f}x below the "
        f"{NATIVE_SPEEDUP_MIN:.2f}x floor: {dict(zip(KERNELS, speedups))}"
    )
