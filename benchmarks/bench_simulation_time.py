"""Cycle-accurate simulation time: compiled engine vs. interpreted loop.

The paper's end-to-end claim rests on its cycle-accurate simulator; this
benchmark times the compiled schedule engine (:mod:`repro.sim.engine`)
against the interpreted reference loop
(:meth:`~repro.sim.machine.CGRASimulator.run_reference`) over the full
iteration space of a representative kernel set on the Plaid fabric.
Both engines are bit-identical by invariant (the run asserts report
equality), so the printed per-kernel times and the geomean speedup are
the artifact; CI gates the hot path with a per-kernel
``$REPRO_SIM_BUDGET_S`` budget and a ``$REPRO_SIM_SPEEDUP_MIN`` geomean
floor (default 1.5x).
"""

import math
import os
import time

from repro.arch import make_plaid
from repro.ir.interpreter import DFGInterpreter
from repro.mapping.engine import get_mapper
from repro.sim import CGRASimulator
from repro.workloads import get_dfg

KERNELS = ["atax_u2", "gemm_u4", "conv3x3", "jacobi_u4", "seidel"]

#: Hard per-(kernel, engine) budget in seconds; CI tightens it.
BUDGET_S = float(os.environ.get("REPRO_SIM_BUDGET_S", "60"))

#: Geomean speedup floor of compiled over interpreted execution.
SPEEDUP_MIN = float(os.environ.get("REPRO_SIM_SPEEDUP_MIN", "1.5"))

#: Simulation windows per engine (the compiled side pays compilation
#: once, inside its timed region — the batched multi-window scenario).
ROUNDS = 3


def test_simulation_time(benchmark):
    plaid = make_plaid()
    mapper = get_mapper("plaid")
    mappings = {name: mapper.make(seed=2).map(get_dfg(name), plaid)
                for name in KERNELS}

    def run():
        timings = {}
        for name, mapping in mappings.items():
            memory = DFGInterpreter(mapping.dfg).prepare_memory(fill=3)
            compiled_sim = CGRASimulator(mapping)
            start = time.perf_counter()
            for _ in range(ROUNDS):
                compiled_sim.run(memory, verify=False)
            compiled_s = time.perf_counter() - start
            reference_sim = CGRASimulator(mapping)
            start = time.perf_counter()
            for _ in range(ROUNDS):
                reference_sim.run_reference(memory, verify=False)
            reference_s = time.perf_counter() - start
            # Conformance ride-along: identical reports, identical verify.
            got = compiled_sim.run(memory)
            want = reference_sim.run_reference(memory)
            assert got == want, f"{name}: engines diverge"
            assert got.verified is True, f"{name}: {got.mismatches[:3]}"
            timings[name] = (compiled_s, reference_s, got.cycles)
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    speedups = []
    for name in KERNELS:
        compiled_s, reference_s, cycles = timings[name]
        speedup = reference_s / compiled_s if compiled_s else float("inf")
        speedups.append(speedup)
        print(f"  {name}: {cycles} cycles x{ROUNDS}, "
              f"compiled {compiled_s:.3f}s, interpreted {reference_s:.3f}s "
              f"({speedup:.2f}x)")
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    print(f"  geomean speedup: {geomean:.2f}x (floor {SPEEDUP_MIN:.2f}x)")

    over = {name: t[0] for name, t in timings.items() if t[0] >= BUDGET_S}
    assert not over, f"kernels over the {BUDGET_S:.0f}s budget: {over}"
    assert geomean >= SPEEDUP_MIN, (
        f"compiled engine geomean speedup {geomean:.2f}x below the "
        f"{SPEEDUP_MIN:.2f}x floor: {dict(zip(KERNELS, speedups))}"
    )
