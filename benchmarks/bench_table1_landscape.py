"""Table 1: the reconfigurable-architecture landscape (qualitative)."""

from repro.eval.landscape import landscape_table


def test_table1_landscape(benchmark):
    table = benchmark.pedantic(landscape_table, rounds=1, iterations=1)
    print()
    print(table)
    assert "Plaid (this work)" in table
    # The landscape claim: only Plaid is high on all three axes.
    plaid_row = next(line for line in table.splitlines()
                     if "this work" in line)
    assert plaid_row.count("High") == 3
