"""Figure 18: mapper study on the Plaid fabric.

Paper: the motif-aware Plaid mapper beats PathFinder by ~1.25x and SA by
~1.28x on average; the generic mappers still work (collective routing
shortens their paths too) but cannot exploit motifs."""

from repro.eval import experiments


def test_fig18_mappers(figure):
    result = figure(experiments.fig18)
    pf_avg, sa_avg = result.averages()
    # Generic mappers are slower on average (paper: 1.25x / 1.28x; our
    # reimplementations land in the same direction).
    assert pf_avg > 1.0
    assert sa_avg > 1.0
    # The Plaid mapper never trails a generic mapper catastrophically.
    for row in result.rows:
        assert row.pathfinder > 0.5 and row.sa > 0.5
    # Generic mappers achieve parity on several simple DFGs (the paper's
    # observation that the hardware helps them too).
    parity = sum(1 for row in result.rows
                 if abs(row.pathfinder - 1.0) < 0.05
                 or abs(row.sa - 1.0) < 0.05)
    assert parity >= 5
