"""Figure 12: per-kernel performance normalized to the ST baseline.

Paper shapes: Plaid averages ~1.0x the spatio-temporal CGRA (scatter in
both directions per kernel); the spatial CGRA averages ~1.4x slower, with
parity on kernels that need no partitioning (e.g. dwconv)."""

from repro.eval import experiments


def test_fig12_performance(figure):
    result = figure(experiments.fig12)
    _one, spatial_avg, plaid_avg = result.averages()
    # Plaid preserves the baseline's performance (paper: ~1.0x).
    assert 0.85 < plaid_avg < 1.35
    # Spatial pays for partitioning (paper: ~1.4x).
    assert 1.08 < spatial_avg < 2.1
    # Per-kernel scatter exists in both directions for Plaid.
    ratios = [row.normalized()[2] for row in result.rows]
    assert any(r < 1.0 for r in ratios)
    assert any(r > 1.0 for r in ratios)
    # Parity cases for spatial exist (simple kernels, no partitioning).
    spatial_ratios = {row.workload: row.normalized()[1]
                      for row in result.rows}
    assert spatial_ratios["dwconv"] < 1.25
