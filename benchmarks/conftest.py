"""Shared fixtures for the per-figure benchmarks.

Each benchmark regenerates one table or figure of the paper.  The
underlying evaluations are memoized in :mod:`repro.eval.harness`, so the
full suite maps every (workload, architecture, mapper) configuration once
per pytest session; individual benchmarks time their experiment function
with a single pedantic round (mapping is deterministic — statistical
repetition would only re-read the memoization cache).
"""

import pytest


def run_once(benchmark, func):
    """Benchmark ``func`` with one warm round and return its result."""
    return benchmark.pedantic(func, rounds=1, iterations=1,
                              warmup_rounds=0)


@pytest.fixture
def figure(benchmark):
    """Run an experiment function once under the benchmark timer and
    print its paper-style rendering."""

    def runner(func):
        result = run_once(benchmark, func)
        print()
        print(result.render() if hasattr(result, "render") else result)
        return result

    return runner
