"""Shared fixtures for the per-figure benchmarks.

Each benchmark regenerates one table or figure of the paper.  The
underlying evaluations are memoized in :mod:`repro.eval.harness`, so the
full suite maps every (workload, architecture, mapper) configuration once
per pytest session; individual benchmarks time their experiment function
with a single pedantic round (mapping is deterministic — statistical
repetition would only re-read the memoization cache).

The session starts by warming the headline grid (all Table-2 workloads
on st/spatial/plaid) through :mod:`repro.eval.parallel`: set
``REPRO_JOBS=N`` to fan the fleet out over N worker processes, and
``REPRO_CACHE_DIR=DIR`` to share the evaluations across pytest runs via
the persistent result store.
"""

import pytest


@pytest.fixture(scope="session", autouse=True)
def warm_fleet(request):
    """Pre-warm the main workload x architecture grid via the sweep
    engine (parallel when ``REPRO_JOBS`` asks for it).

    Only worthwhile when several figure benchmarks run: a small
    selection (``-k one_bench``, or a mixed tests+benchmarks session
    with one benchmark in it) evaluates just the cells it touches
    through the per-figure prewarms instead of paying for the fleet."""
    bench_items = [item for item in request.session.items
                   if item.fspath.basename.startswith("bench_")]
    if len(bench_items) < 4:
        return
    from repro.eval.parallel import build_grid, prewarm

    prewarm(build_grid())


def run_once(benchmark, func):
    """Benchmark ``func`` with one warm round and return its result."""
    return benchmark.pedantic(func, rounds=1, iterations=1,
                              warmup_rounds=0)


@pytest.fixture
def figure(benchmark):
    """Run an experiment function once under the benchmark timer and
    print its paper-style rendering."""

    def runner(func):
        result = run_once(benchmark, func)
        print()
        print(result.render() if hasattr(result, "render") else result)
        return result

    return runner
