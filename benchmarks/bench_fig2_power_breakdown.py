"""Figure 2: fabric power distribution, spatio-temporal vs Plaid.

Paper: ST splits 15% routers / 29% comm config / 19% compute config /
28% compute / 9% other; Plaid consumes 57% of the baseline's power with
compute rising to ~49% of its (smaller) total."""

from repro.eval import experiments

PAPER_ST = {"router": 0.15, "comm_config": 0.29, "compute_config": 0.19,
            "compute": 0.28, "other": 0.09}


def test_fig2_power_breakdown(figure):
    result = figure(experiments.fig2)
    # Fleet-average ST distribution within a few points of the paper's.
    for module, expected in PAPER_ST.items():
        assert abs(result.st_breakdown[module] - expected) < 0.06, module
    # Plaid's compute share roughly half its total (collective routing
    # shrank everything else).
    assert result.plaid_breakdown["compute"] > 0.40
    # The headline: ~43% power reduction.
    assert 0.47 < result.power_ratio < 0.67
