"""Routing throughput: compiled core vs. interpreted reference router.

Two measurements, both conformance-checked (the compiled core is
bit-identical to :func:`~repro.mapping.router.route_edge_reference` by
invariant, so the printed numbers are the artifact):

* **routes/second per fabric** — a deterministic scenario sweep (every
  sampled (src FU, dst FU, slack) triple) routed under each engine;
* **mapper-level routing stage** — the phase the compiled core
  accelerates inside every mapper: place a PathFinder placement into a
  pooled MRRG, route every edge, rip all routes up, and route them
  again (the negotiation round-trip), per kernel on the 4x4 and 6x6
  spatio-temporal fabrics.  The geomean speedup across these cases is
  the CI gate: it must stay above ``$REPRO_ROUTING_SPEEDUP_MIN``
  (default 1.5x).

CI also tightens a hard wall-clock budget per timed section via
``$REPRO_ROUTING_BUDGET_S``.

A third lane times the native (generated-C) route search of
:mod:`repro.native` against the compiled Python core on the same
scenario sweep, gated by a ``$REPRO_NATIVE_SPEEDUP_MIN`` geomean floor
over the st meshes (skipped when no C toolchain is available).
"""

import math
import os
import statistics
import time

import pytest

from repro.arch import MRRG, make_plaid, make_spatio_temporal
from repro.eval.harness import _seed_for
from repro.mapping import routecore
from repro.mapping.common import route_all_edges
from repro.mapping.engine import default_pool
from repro.mapping.pathfinder import PathFinderMapper
from repro.mapping.router import (
    min_transport_latency, route_edge, set_routing_engine,
)
from repro.workloads import get_dfg

#: Kernels for the mapper-level routing stage (placements come from the
#: harness-seeded PathFinder, so the workload is the real one).
KERNELS = ["conv3x3", "jacobi_u4", "gemm_u4", "seidel", "gesum_u2",
           "atax_u2"]

#: Hard per-section budget in seconds; CI tightens it.
BUDGET_S = float(os.environ.get("REPRO_ROUTING_BUDGET_S", "120"))

#: Geomean floor for the mapper-level routing-stage speedup.
SPEEDUP_MIN = float(os.environ.get("REPRO_ROUTING_SPEEDUP_MIN", "1.5"))

#: Geomean floor for the native (generated-C) route search over the
#: compiled Python core, measured on the spatio-temporal meshes where
#: searches are long enough for the C heap to pay for the call
#: marshalling (short plaid searches are printed as context, ungated).
NATIVE_SPEEDUP_MIN = float(os.environ.get("REPRO_NATIVE_SPEEDUP_MIN", "1.5"))

FABRICS = [
    ("st4x4", lambda: make_spatio_temporal(4, 4)),
    ("st6x6", lambda: make_spatio_temporal(6, 6)),
    ("plaid", lambda: make_plaid(2, 2)),
]


def _throughput(arch, ii, engine, rounds=12):
    """Routes/second over the deterministic scenario sweep."""
    set_routing_engine(engine)
    routecore.clear_core_cache()
    mrrg = MRRG(arch, ii)
    routecore.ensure_core(mrrg)
    n_fus = len(arch.fus)
    cases = [(src, dst, slack)
             for src in range(0, n_fus, 3)
             for dst in range(0, n_fus, 2)
             for slack in (0, 1, 2)]
    count = 0
    start = time.perf_counter()
    for _ in range(rounds):
        for src, dst, slack in cases:
            arrive = min_transport_latency(arch, src, dst) + slack
            route_edge(mrrg, 1, src, 0, dst, arrive, commit=False)
            count += 1
    return count / (time.perf_counter() - start), time.perf_counter() - start


def _routing_stage(arch, dfg, placement, ii, engine, reps=20):
    """Median seconds for one place+route+ripup+reroute round-trip."""
    set_routing_engine(engine)
    routecore.clear_core_cache()
    mrrg = MRRG(arch, ii)
    routecore.ensure_core(mrrg)      # binds under compiled; no-op else
    samples = []
    routes = None
    for _ in range(reps):
        begin = time.perf_counter()
        mrrg.reset()
        for node_id, (fu_id, cycle) in placement.items():
            mrrg.place_node(node_id, fu_id, cycle)
        routes, failures = route_all_edges(dfg, mrrg, placement)
        assert not failures
        for route in routes.values():
            mrrg.uncommit_route(route)
        routes, failures = route_all_edges(dfg, mrrg, placement)
        assert not failures
        samples.append(time.perf_counter() - begin)
    return statistics.median(samples), routes


def test_routing_time(benchmark):
    def run():
        results = {"throughput": [], "stage": []}
        # Raw router throughput per fabric.
        for name, factory in FABRICS:
            arch = factory()
            for ii in (4, 8):
                compiled, spent_c = _throughput(arch, ii, "compiled")
                reference, spent_r = _throughput(arch, ii, "reference")
                results["throughput"].append(
                    (name, ii, compiled, reference, spent_c + spent_r))
        # Mapper-level routing stage (PathFinder placements).
        for fab_name, factory in FABRICS[:2]:       # st meshes
            arch = factory()
            for kernel in KERNELS:
                set_routing_engine("compiled")
                default_pool().clear()
                routecore.clear_core_cache()
                seed = _seed_for(kernel, "st", "pathfinder")
                mapping = PathFinderMapper(seed=seed).map(
                    get_dfg(kernel), arch)
                dfg = get_dfg(kernel)
                ref_s, ref_routes = _routing_stage(
                    arch, dfg, mapping.placement, mapping.ii, "reference")
                comp_s, comp_routes = _routing_stage(
                    arch, dfg, mapping.placement, mapping.ii, "compiled")
                # Conformance ride-along: identical routes, step for step.
                assert comp_routes == ref_routes, (fab_name, kernel)
                results["stage"].append(
                    (fab_name, kernel, ref_s, comp_s))
        set_routing_engine("compiled")
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("  routes/second (compiled vs reference):")
    for name, ii, compiled, reference, spent in results["throughput"]:
        print(f"    {name} II={ii}: {compiled:8.0f}/s vs {reference:8.0f}/s "
              f"({compiled / reference:.2f}x)")
        assert spent < BUDGET_S, f"{name} II={ii} over budget: {spent:.1f}s"
    print("  mapper routing stage (place + route-all + rip-up + reroute):")
    speedups = []
    for fab_name, kernel, ref_s, comp_s in results["stage"]:
        speedup = ref_s / comp_s if comp_s else float("inf")
        speedups.append(speedup)
        print(f"    {fab_name} {kernel}: reference {ref_s * 1e3:.2f}ms, "
              f"compiled {comp_s * 1e3:.2f}ms ({speedup:.2f}x)")
        assert ref_s < BUDGET_S and comp_s < BUDGET_S, (fab_name, kernel)
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    print(f"  geomean routing-stage speedup: {geomean:.2f}x "
          f"(floor {SPEEDUP_MIN:.2f}x)")
    assert geomean >= SPEEDUP_MIN, (
        f"compiled routing geomean speedup {geomean:.2f}x fell below the "
        f"{SPEEDUP_MIN:.2f}x floor"
    )


def _native_available() -> bool:
    from repro.native import toolchain_available

    return toolchain_available()


def _routed_sweep(arch, ii, engine, rounds):
    """(routes/second, routes of the first pass) over the scenario sweep."""
    set_routing_engine(engine)
    routecore.clear_core_cache()
    mrrg = MRRG(arch, ii)
    routecore.ensure_core(mrrg)
    n_fus = len(arch.fus)
    cases = [(src, dst, slack)
             for src in range(0, n_fus, 3)
             for dst in range(0, n_fus, 2)
             for slack in (0, 1, 2)]
    # Warm pass, outside the timed region: compiles/loads the native
    # module once and collects the conformance routes.
    routes = [route_edge(mrrg, 1, src, 0, dst,
                         min_transport_latency(arch, src, dst) + slack,
                         commit=False)
              for src, dst, slack in cases]
    count = 0
    start = time.perf_counter()
    for _ in range(rounds):
        for src, dst, slack in cases:
            arrive = min_transport_latency(arch, src, dst) + slack
            route_edge(mrrg, 1, src, 0, dst, arrive, commit=False)
            count += 1
    return count / (time.perf_counter() - start), routes


@pytest.mark.skipif(not _native_available(),
                    reason="native backend needs a C toolchain")
def test_native_routing_speedup(benchmark):
    """Native route search vs the compiled Python core, conformance-
    checked per scenario.  The CI gate is the geomean over the st
    meshes (``$REPRO_NATIVE_SPEEDUP_MIN``); plaid's short searches are
    printed as context."""

    def run():
        rows = []
        for name, factory in FABRICS:
            arch = factory()
            for ii in (4, 8):
                compiled, routes_c = _routed_sweep(arch, ii, "compiled",
                                                   rounds=12)
                native, routes_n = _routed_sweep(arch, ii, "native",
                                                 rounds=12)
                assert routes_n == routes_c, (name, ii)
                rows.append((name, ii, compiled, native))
        set_routing_engine("compiled")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("  route searches/second (native vs compiled):")
    gated = []
    for name, ii, compiled, native in rows:
        speedup = native / compiled if compiled else float("inf")
        gate = name.startswith("st")
        if gate:
            gated.append(speedup)
        print(f"    {name} II={ii}: {native:8.0f}/s vs {compiled:8.0f}/s "
              f"({speedup:.2f}x{'' if gate else ', ungated'})")
    geomean = math.exp(sum(math.log(s) for s in gated) / len(gated))
    print(f"  geomean native speedup (st meshes): {geomean:.2f}x "
          f"(floor {NATIVE_SPEEDUP_MIN:.2f}x)")
    assert geomean >= NATIVE_SPEEDUP_MIN, (
        f"native route-search geomean speedup {geomean:.2f}x fell below "
        f"the {NATIVE_SPEEDUP_MIN:.2f}x floor"
    )
