"""Figure 16: application-level DNN comparison, spatial vs Plaid.

Paper: across three TinyML networks the spatial CGRA consumes ~1.42x the
energy and reaches ~0.36x the perf/area of Plaid."""

from repro.eval import experiments


def test_fig16_dnn_apps(figure):
    result = figure(experiments.fig16)
    assert len(result.rows) == 3
    for row in result.rows:
        # Spatial costs more energy at the application level...
        assert row.energy_ratio > 1.2
        # ...and delivers a fraction of Plaid's perf/area (paper ~0.36).
        assert 0.15 < row.perf_area_ratio < 0.6
