"""Serve-path latency: warm streaming requests against the service.

The service's value is that warm traffic is pure store/memo reads plus
HTTP framing — so the benchmark times exactly that: the golden 5x3 grid
is evaluated once (the cold fill, untimed), then (a) one warm
submit-and-stream request and (b) four *concurrent* warm requests are
timed end to end through the real socket, client, and NDJSON stream.
CI runs this with a tightened ``$REPRO_SERVE_BUDGET_S``; the assertion
guards against regressions that would put evaluation, store scans, or
per-cell blocking work back on the warm path.
"""

import os
import threading
import time

from repro.eval import client, parallel
from repro.eval.harness import clear_caches, configure_store
from repro.eval.serve import SweepServer
from repro.mapping import race

#: Hard budget per timed stage, in seconds; CI tightens it.
BUDGET_S = float(os.environ.get("REPRO_SERVE_BUDGET_S", "60"))

#: The golden 5x3 grid (tests/data/golden_small_grid.json).
WORKLOADS = ["dwconv", "conv2x2", "gesum_u2", "atax_u2", "jacobi_u2"]
ARCHS = ["st", "spatial", "plaid"]

CONCURRENT_CLIENTS = 4


def _teardown():
    clear_caches()
    configure_store(None)
    race.configure_racing(max_workers=0, sweep_jobs=1)
    race.shutdown_racing()


def test_warm_serve_request_time(benchmark, tmp_path):
    clear_caches()
    grid_size = len(parallel.build_grid(WORKLOADS, ARCHS))
    server = SweepServer(store=tmp_path / "store", jobs=2,
                         use_processes=False).start_background()
    try:
        # Cold fill (untimed): one evaluation per cell.
        _cells, cold = client.sweep(server.host, server.port,
                                    workloads=WORKLOADS, archs=ARCHS,
                                    timeout=600)
        assert cold["evaluated"] == grid_size and cold["failed"] == 0

        def run():
            timings = {}
            start = time.perf_counter()
            cells, summary = client.sweep(server.host, server.port,
                                          workloads=WORKLOADS,
                                          archs=ARCHS, timeout=600)
            timings["warm_request"] = time.perf_counter() - start

            summaries = []
            def one_client():
                _c, s = client.sweep(server.host, server.port,
                                     workloads=WORKLOADS, archs=ARCHS,
                                     timeout=600)
                summaries.append(s)

            threads = [threading.Thread(target=one_client)
                       for _ in range(CONCURRENT_CLIENTS)]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            timings["concurrent_warm"] = time.perf_counter() - start
            return timings, cells, summary, summaries

        timings, cells, summary, summaries = benchmark.pedantic(
            run, rounds=1, iterations=1)
    finally:
        server.shutdown_background()
        _teardown()

    assert len(cells) == grid_size
    assert summary["evaluated"] == 0            # warm: zero evaluations
    assert len(summaries) == CONCURRENT_CLIENTS
    assert all(s["evaluated"] == 0 and s["failed"] == 0
               for s in summaries)
    print()
    print(f"  warm request ({grid_size} cells): "
          f"{timings['warm_request']:.3f}s")
    print(f"  {CONCURRENT_CLIENTS} concurrent warm requests: "
          f"{timings['concurrent_warm']:.3f}s")
    over = {stage: seconds for stage, seconds in timings.items()
            if seconds >= BUDGET_S}
    assert not over, f"stages over the {BUDGET_S:.0f}s budget: {over}"
