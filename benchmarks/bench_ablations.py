"""Ablation studies on the design choices DESIGN.md calls out.

Not a paper figure — these quantify the contribution of individual Plaid
design elements using the same evaluation pipeline:

* **bypass paths**: map with the motif compute unit's virtual bypass
  wires disabled (every internal edge pays the local router);
* **flexible scheduling**: restrict motifs to the stringent left-to-right
  template (Fig. 11(a)) instead of the full flexible family;
* **motif awareness**: the Fig. 18 comparison, summarized as a single
  number (generic-vs-Plaid-mapper geomean).
"""

import math

from repro.arch import make_plaid
from repro.errors import MappingError
from repro.mapping import PlaidMapper
from repro.motifs import schedule_templates
from repro.workloads import get_dfg

#: A representative cross-section (full sweeps live in the fig benches).
KERNELS = ["gesum_u2", "conv2x2", "doitgen_u2", "cholesky_u2", "jacobi_u2"]


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _map_ii(dfg, arch, mapper):
    try:
        return mapper.map(dfg, arch).ii
    except MappingError:
        return arch.config_entries + 1


def test_ablation_bypass_paths(benchmark):
    """Disabling bypass wires must never help, and the mapping stays
    feasible (the local router absorbs the traffic, as Section 4.1
    describes)."""

    def run():
        results = {}
        for name in KERNELS:
            dfg = get_dfg(name)
            with_bypass = _map_ii(dfg, make_plaid(), PlaidMapper(seed=9))
            stripped = make_plaid()
            stripped.bypass_pairs.clear()
            without = _map_ii(dfg, stripped, PlaidMapper(seed=9))
            results[name] = (with_bypass, without)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, (with_b, without_b) in results.items():
        print(f"  {name}: II with bypass {with_b}, without {without_b}")
    assert all(without >= with_b for with_b, without in results.values())


def test_ablation_flexible_scheduling(benchmark):
    """Stringent (single-template) scheduling vs the flexible family —
    the paper's Figure 11 argument.  Flexible scheduling should never
    lose and should win somewhere."""

    def run():
        flexible, stringent = [], []
        for name in KERNELS:
            dfg = get_dfg(name)
            flexible.append(_map_ii(dfg, make_plaid(), PlaidMapper(seed=9)))
            stringent.append(_map_ii(dfg, make_plaid(),
                                     _StringentPlaidMapper(seed=9)))
        return flexible, stringent

    flexible, stringent = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"  flexible IIs:  {flexible}")
    print(f"  stringent IIs: {stringent}")
    assert _geomean(stringent) >= _geomean(flexible)


class _StringentPlaidMapper(PlaidMapper):
    """Plaid mapper restricted to one schedule template per motif kind."""

    def map(self, dfg, arch, hierarchy=None):
        import repro.motifs.schedules as schedules
        original = schedules.schedule_templates
        from functools import lru_cache

        @lru_cache(maxsize=None)
        def stringent(kind, max_templates=12):
            return original(kind)[:1]

        schedules.schedule_templates = stringent
        # The mapper module imported the symbol directly; patch both.
        import repro.mapping.plaid_mapper as pm
        pm_original = pm.schedule_templates
        pm.schedule_templates = stringent
        try:
            return super().map(dfg, arch, hierarchy=hierarchy)
        finally:
            schedules.schedule_templates = original
            pm.schedule_templates = pm_original
