"""Variant families: expansion, verification, and lowering invariants.

Two invariants of the kernel-variant layer, timed end to end:

* every curated family variant (:data:`repro.workloads.FAMILY_RECIPES`)
  compiles and passes the registry's interpreter verification gate —
  :func:`repro.workloads.get_dfg` runs base and variant on a
  deterministic memory image and rejects any recipe that reorders a
  loop-carried dependence;
* the 30 registered Table-2 specs lower *bit-identically* whether the
  unroll factor runs as the legacy lowering knob or as the pre-lowering
  AST unroll pass — the refactor that moved unrolling out of
  :mod:`repro.frontend.lower` must never change a golden DFG.

CI runs this with a tightened ``$REPRO_VARIANT_BUDGET_S``; expansion is
pure frontend + interpreter work (no mapping), so the whole sweep fits
in seconds even on cold caches.
"""

import os

from repro.frontend import compile_kernel
from repro.workloads import registry

#: Hard budget for full-family expansion, in seconds; CI tightens it.
BUDGET_S = float(os.environ.get("REPRO_VARIANT_BUDGET_S", "60"))


def test_family_expansion_and_verification_time(benchmark):
    """Expand and verify every curated variant of every family."""
    registry.clear_dfg_caches()

    def run():
        registry.clear_dfg_caches()
        specs = [spec for kernel in registry.family_kernels()
                 for spec in registry.variants_of(kernel)]
        dfgs = [registry.get_dfg(spec.name) for spec in specs]
        return specs, dfgs

    specs, dfgs = benchmark.pedantic(run, rounds=1, iterations=1)
    registry.clear_dfg_caches()
    variants = [spec for spec in specs if spec.is_variant]
    assert len(specs) == len(set(spec.name for spec in specs))
    assert len(specs) == len(registry.all_workloads()) + len(variants)
    # Every curated recipe is legal: get_dfg verified each one above.
    assert len(variants) == sum(
        len(recipes) for recipes in registry.FAMILY_RECIPES.values())
    assert all(dfg.name == spec.name for spec, dfg in zip(specs, dfgs))
    print()
    print(f"  {len(specs)} family members ({len(variants)} verified "
          f"variants) across {len(registry.family_kernels())} kernels")
    stats = benchmark.stats.stats if hasattr(benchmark, "stats") else None
    if stats is not None:
        assert stats.max < BUDGET_S, (
            f"family expansion took {stats.max:.1f}s "
            f"(budget {BUDGET_S:.0f}s)")


def test_registered_specs_lower_bit_identically(benchmark):
    """The AST unroll pass reproduces the legacy lowering knob exactly."""

    def run():
        pairs = []
        for spec in registry.all_workloads():
            knob = compile_kernel(spec.source, name=spec.name,
                                  array_shapes=spec.shape_dict,
                                  unroll=spec.unroll)
            recipe = compile_kernel(spec.source, name=spec.name,
                                    array_shapes=spec.shape_dict,
                                    unroll=1, recipe=f"u{spec.unroll}")
            pairs.append((spec.name, knob, recipe))
        return pairs

    pairs = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(pairs) == 30
    mismatched = [name for name, knob, recipe in pairs
                  if not knob.structurally_equal(recipe)]
    assert not mismatched, (
        f"specs whose AST-unroll lowering diverged: {mismatched}")
    print()
    print(f"  {len(pairs)} registered specs lower bit-identically "
          "via knob and recipe paths")
